"""Rule engine of ``repro lint``.

The engine walks Python sources, parses each once, and hands a
:class:`FileContext` to every registered :class:`Rule`.  Rules emit
:class:`Finding`\\ s; the engine applies the suppression comments and
aggregates everything into a :class:`LintReport` the CLI renders as
text or JSON (see :mod:`repro.lint.report`).

Suppression syntax (DESIGN.md §8):

- ``# repro: noqa`` at the end of a line suppresses every rule on that
  line;
- ``# repro: noqa[RST001]`` (comma-separated ids allowed) suppresses
  only the named rules on that line;
- ``# repro: noqa-file[RULE-ID]`` anywhere in a file suppresses the
  named rules for the whole file (bare ``noqa-file`` suppresses all —
  reserved for vendored code, never used in-tree).

Suppressed findings are kept (reported under ``counts.suppressed`` and
``--format json``) so a creeping pile of waivers stays visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Severity levels, in increasing order of badness.
SEVERITIES = ("warning", "error")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?"
)


class LintError(Exception):
    """Internal linter failure (bad path, unknown rule): CLI exit 2."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int
    col: int
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


class _Suppressions:
    """Parsed ``# repro: noqa`` comments of one file."""

    def __init__(self, source: str) -> None:
        #: line number -> rule ids suppressed there (None = all rules)
        self.lines: Dict[int, Optional[Set[str]]] = {}
        #: file-wide suppressed ids (None entry = everything)
        self.file_rules: Optional[Set[str]] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            ids = (None if rules is None else
                   {r.strip() for r in rules.split(",") if r.strip()})
            if match.group("file"):
                if ids is None:
                    self.file_rules = None
                elif self.file_rules is not None:
                    self.file_rules |= ids
            else:
                if ids is None or self.lines.get(lineno, set()) is None:
                    self.lines[lineno] = None
                else:
                    existing = self.lines.setdefault(lineno, set())
                    assert existing is not None
                    existing |= ids

    def covers(self, finding: Finding) -> bool:
        if self.file_rules is None:
            return True
        if finding.rule in self.file_rules:
            return True
        if finding.line in self.lines:
            ids = self.lines[finding.line]
            return ids is None or finding.rule in ids
        return False


class FileContext:
    """One parsed source file handed to every applicable rule."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.root = root
        try:
            self.relpath = path.relative_to(root).as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        try:
            self.source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        self.suppressions = _Suppressions(self.source)
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(self.source, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc

    def finding(self, rule: "Rule", node: ast.AST,
                message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=rule.severity,
        )


class Rule:
    """Base class: one invariant, identified by a stable string id."""

    id: str = "RULE000"
    severity: str = "error"
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule wants to see the file at all."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (``ctx.tree`` is parsed)."""
        return iter(())


@dataclass
class LintReport:
    """Aggregated outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: Sequence[Rule] = ()

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 violations (internal errors raise LintError: 2)."""
        if self.errors or (strict and self.findings):
            return 1
        return 0


class LintEngine:
    """Runs a ruleset over a set of files and/or directory trees."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        seen: Set[str] = set()
        for rule in self.rules:
            if rule.id in seen:
                raise LintError(f"duplicate rule id {rule.id!r}")
            seen.add(rule.id)

    def run(self, paths: Sequence[Path],
            root: Optional[Path] = None) -> LintReport:
        files = sorted(set(self._expand(paths)))
        if root is None:
            root = _detect_root(files)
        report = LintReport(rules=self.rules)
        report.files = len(files)
        for path in files:
            ctx = FileContext(path, root)
            if ctx.parse_error is not None:
                err = ctx.parse_error
                report.findings.append(Finding(
                    rule="SYN001", path=ctx.relpath,
                    line=err.lineno or 1, col=(err.offset or 0) + 1,
                    message=f"syntax error: {err.msg}",
                    severity="error",
                ))
                continue
            for rule in self.rules:
                if not rule.applies(ctx):
                    continue
                for finding in rule.check(ctx):
                    if ctx.suppressions.covers(finding):
                        report.suppressed.append(finding)
                    else:
                        report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _expand(self, paths: Sequence[Path]) -> Iterator[Path]:
        if not paths:
            raise LintError("no paths to lint")
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from (p for p in path.rglob("*.py")
                            if "__pycache__" not in p.parts)
            elif path.is_file():
                yield path
            else:
                raise LintError(f"no such file or directory: {path}")


def _detect_root(files: Iterable[Path]) -> Path:
    """Repo root: nearest ancestor with a pyproject.toml, else cwd."""
    for path in files:
        for ancestor in path.resolve().parents:
            if (ancestor / "pyproject.toml").is_file():
                return ancestor
        break
    return Path.cwd()


def select_rules(all_rules: Sequence[Rule],
                 ids: Optional[Sequence[str]]) -> List[Rule]:
    """Subset a ruleset by id; comma-separated ids are flattened."""
    if not ids:
        return list(all_rules)
    wanted: List[str] = []
    for entry in ids:
        wanted.extend(part.strip() for part in entry.split(",")
                      if part.strip())
    by_id = {rule.id: rule for rule in all_rules}
    unknown = [w for w in wanted if w not in by_id]
    if unknown:
        raise LintError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(by_id))}"
        )
    return [by_id[w] for w in dict.fromkeys(wanted)]
