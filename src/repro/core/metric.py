"""The NBTIefficiency metric (Section 4.2).

Equation (1) of the paper combines delay, the NBTI guardband and TDP:

    NBTIefficiency = (Delay * (1 + NBTIguardband))^3 * TDP

(The typesetting of eq. (1) is ambiguous about the scope of the cube,
but every worked example in the paper — 1.73 baseline, 1.41 inverting,
1.24 adder, 1.12 register file, 1.24 scheduler, 1.09 DL0, 1.28 whole
processor — matches the form above exactly, mirroring how PD^3 cubes
delay.)

All quantities are *relative* to a guardband-free baseline: delay 1.0,
TDP 1.0.  Equations (2)–(4) combine blocks into a processor: delay is the
combined CPI times the worst cycle time, TDP accumulates, and the
guardband is the maximum over blocks ("all paths ... have been adjusted
to fit the cycle time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: The whole NBTI guardband paid by an unprotected design (Section 4.2).
BASELINE_GUARDBAND = 0.20

#: The minimum guardband left after perfect balancing (10x reduction).
MIN_GUARDBAND = 0.02

#: Relative delay of operating in inverted mode half the time: an XNOR
#: (1 FO4) on a 10 FO4 cycle (Section 4.2).
INVERT_MODE_DELAY = 1.10


def nbti_efficiency(delay: float, guardband: float, tdp: float) -> float:
    """Equation (1): lower is better.

    Parameters
    ----------
    delay:
        Relative delay (cycle-count x cycle-time product), 1.0 = baseline.
    guardband:
        NBTI guardband as a fraction of the cycle time (e.g. 0.02).
    tdp:
        Relative thermal design power, 1.0 = baseline.

    Examples
    --------
    >>> round(nbti_efficiency(1.0, 0.20, 1.0), 2)   # pay the guardband
    1.73
    >>> round(nbti_efficiency(1.10, 0.02, 1.0), 2)  # inverted mode
    1.41
    """
    if delay <= 0.0 or tdp <= 0.0:
        raise ValueError("delay and tdp must be positive")
    if guardband < 0.0:
        raise ValueError("guardband must be non-negative")
    return (delay * (1.0 + guardband)) ** 3 * tdp


@dataclass(frozen=True)
class BlockCost:
    """Delay / guardband / TDP contribution of one protected block."""

    name: str
    delay: float = 1.0
    guardband: float = MIN_GUARDBAND
    tdp: float = 1.0
    #: Relative weight of this block in the processor TDP budget
    #: (Section 4.7 assumes the five studied blocks weigh equally).
    tdp_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0.0 or self.tdp <= 0.0 or self.tdp_weight < 0.0:
            raise ValueError(f"invalid cost parameters for {self.name!r}")
        if self.guardband < 0.0:
            raise ValueError("guardband must be non-negative")

    @property
    def efficiency(self) -> float:
        """Block-level NBTIefficiency."""
        return nbti_efficiency(self.delay, self.guardband, self.tdp)


@dataclass(frozen=True)
class ProcessorCost:
    """Whole-processor combination of block costs (eqs. 2–4)."""

    blocks: Sequence[BlockCost]
    #: Combined normalised CPI of all mechanisms run together; the paper
    #: measures 1.007 for LineFixed50% on DL0 + DTLB simultaneously.
    combined_cpi: float = 1.0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a processor needs at least one block")
        if self.combined_cpi <= 0.0:
            raise ValueError("combined_cpi must be positive")

    @property
    def delay(self) -> float:
        """Eq. (2): CPI times the worst relative cycle time."""
        return self.combined_cpi * max(b.delay for b in self.blocks)

    @property
    def tdp(self) -> float:
        """Eq. (3): TDP-weight-normalised accumulation."""
        total_weight = sum(b.tdp_weight for b in self.blocks)
        return sum(b.tdp * b.tdp_weight for b in self.blocks) / total_weight

    @property
    def guardband(self) -> float:
        """Eq. (4): the worst guardband over all blocks."""
        return max(b.guardband for b in self.blocks)

    @property
    def efficiency(self) -> float:
        return nbti_efficiency(self.delay, self.guardband, self.tdp)


def baseline_block_cost(name: str = "baseline") -> BlockCost:
    """A block that pays the whole 20% guardband (efficiency 1.73)."""
    return BlockCost(name=name, guardband=BASELINE_GUARDBAND)


def invert_periodically_cost(
    name: str = "invert-periodically", tdp: float = 1.0
) -> BlockCost:
    """A memory-like block operating in inverted mode half of the time.

    The XNOR in the data path costs ~10% delay; balancing is near
    perfect, so the guardband drops to the 2% floor (efficiency 1.41).
    This is the conventional alternative Penelope is compared against —
    note it does not exist for combinational blocks.
    """
    return BlockCost(
        name=name,
        delay=INVERT_MODE_DELAY,
        guardband=MIN_GUARDBAND,
        tdp=tdp,
    )
