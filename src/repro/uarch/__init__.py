"""Trace-driven microarchitecture substrate.

Open-source stand-in for the "IA32 trace-driven Intel production
simulator" of Section 4.1: a structural model of the blocks the paper
protects, driven by value-carrying uop traces.

- :mod:`repro.uarch.uop` — micro-operation records and Table 2 field
  widths.
- :mod:`repro.uarch.trace` — trace containers and sampling helpers.
- :mod:`repro.uarch.regfile` — physical register files with free lists
  and per-bit-cell residency accounting.
- :mod:`repro.uarch.scheduler` — the reservation-station scheduler with
  the exact Table 2 field layout.
- :mod:`repro.uarch.cache` — set-associative caches with the
  valid/inverted line states the cache-like mechanisms need.
- :mod:`repro.uarch.tlb` — the data TLB.
- :mod:`repro.uarch.mob` — Memory Order Buffer id allocation.
- :mod:`repro.uarch.ports` — issue ports and adder-allocation policies.
- :mod:`repro.uarch.core` — :class:`TraceDrivenCore` tying it together.
"""

from repro.uarch.uop import Uop, UopClass, SchedulerLayout, SCHEDULER_LAYOUT
from repro.uarch.trace import Trace, TraceStats
from repro.uarch.regfile import RegisterFile, RegisterFileStats
from repro.uarch.scheduler import Scheduler, SchedulerStats
from repro.uarch.cache import Cache, CacheConfig, CacheStats, LineState
from repro.uarch.tlb import TLB, TLBConfig
from repro.uarch.mob import MemoryOrderBuffer
from repro.uarch.ports import AdderPool, AdderPolicy
from repro.uarch.core import CoreConfig, CoreResult, TraceDrivenCore
from repro.uarch.branch_predictor import (
    BimodalPredictor,
    ProtectedBimodalPredictor,
)
from repro.uarch.traceio import load_trace, save_trace

__all__ = [
    "BimodalPredictor",
    "ProtectedBimodalPredictor",
    "load_trace",
    "save_trace",
    "Uop",
    "UopClass",
    "SchedulerLayout",
    "SCHEDULER_LAYOUT",
    "Trace",
    "TraceStats",
    "RegisterFile",
    "RegisterFileStats",
    "Scheduler",
    "SchedulerStats",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "LineState",
    "TLB",
    "TLBConfig",
    "MemoryOrderBuffer",
    "AdderPool",
    "AdderPolicy",
    "CoreConfig",
    "CoreResult",
    "TraceDrivenCore",
]
