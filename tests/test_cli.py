"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        invocations = {
            "physics": ["physics"],
            "adder": ["adder"],
            "regfile": ["regfile", "--length", "100"],
            "caches": ["caches", "--length", "100"],
            "penelope": ["penelope", "--length", "100"],
            "list-suites": ["list-suites"],
            "sweep": ["sweep", "caches"],
            "results": ["results"],
            "bench-smoke": ["bench-smoke", "--scale", "50"],
        }
        for argv in invocations.values():
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regfile", "--suites", "bogus"])


class TestCommands:
    def test_physics(self, capsys):
        assert main(["physics", "--duty", "0.6", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "steady state" in out

    def test_adder_small_width(self, capsys):
        assert main(["adder", "--width", "8",
                     "--utilization", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "best idle pair" in out
        assert "(1, 8)" in out

    def test_regfile(self, capsys):
        assert main(["regfile", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "worst bias" in out

    def test_caches(self, capsys):
        assert main(["caches", "--suites", "office",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "LineDynamic60%" in out

    def test_penelope(self, capsys):
        assert main(["penelope", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "penelope processor" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_list_suites(self, capsys):
        assert main(["list-suites"]) == 0
        out = capsys.readouterr().out
        for name in ("specint2000", "office", "server"):
            assert name in out
        assert "531" in out  # Table 1 total trace count

    def test_sweep_and_results(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        argv = ["sweep", "caches", "--grid", "ratio=0.4,0.6",
                "--suites", "office", "kernels", "--length", "600",
                "--store", store, "--verbose"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "0 cache hits, 4 executed" in out
        assert "mean_loss" in out

        # Immediate rerun: every point comes from the result store.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cache hits, 0 executed" in out

        assert main(["results", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 stored results" in out
        assert "suite=office" in out

        assert main(["results", "--store", store, "--study",
                     "regfile"]) == 0
        assert "no stored results" in capsys.readouterr().out

    def test_sweep_help_epilog_in_sync_with_registry(self, capsys):
        from repro.experiments import study_names

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in study_names():
            assert name in out

    def test_bench_smoke_rejects_bad_inputs(self, capsys, tmp_path):
        assert main(["bench-smoke", "--path",
                     str(tmp_path / "missing")]) == 2
        assert "not found" in capsys.readouterr().err
        assert main(["bench-smoke", "--scale", "0"]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_bench_smoke_executes_selected_bench(self, capsys,
                                                 tmp_path, monkeypatch):
        # One real (fast) bench through the full smoke plumbing: env
        # wiring, bench_*.py collection override, artefact redirect.
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        results = tmp_path / "smoke-results"
        assert main(["bench-smoke", "--scale", "50",
                     "--results-dir", str(results),
                     "--only", "fig1"]) == 0
        assert (results / "fig1_nbti_physics.json").exists()

    def test_sweep_unknown_study(self, capsys):
        assert main(["sweep", "bogus", "--suites", "office",
                     "--no-store"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_sweep_bad_inputs_exit_cleanly(self, capsys):
        cases = [
            ["sweep", "caches", "--grid", "noequals", "--no-store"],
            ["sweep", "caches", "--grid", "ratio=", "--no-store"],
            ["sweep", "caches", "--grid", "suite=bogus", "--no-store"],
            ["sweep", "caches", "--grid", "scheme=bogus", "--length",
             "300", "--suites", "office", "--no-store"],
            ["sweep", "caches", "--workers", "0", "--suites", "office",
             "--no-store"],
            ["sweep", "caches", "--grid", "ratio=0.4", "--grid",
             "ratio=0.6", "--no-store"],
            ["sweep", "caches", "--grid", "suite=office", "--suites",
             "kernels", "--no-store"],
            ["sweep", "caches", "--suites", "office", "--length",
             "300", "--no-store", "--group-by", "ratoi"],
            ["sweep", "caches", "--suites", "office", "--length",
             "300", "--no-store", "--metrics", "mean_losss"],
            ["sweep", "caches", "--grid", "ratoi=0.4,0.6", "--suites",
             "office", "--no-store"],
        ]
        for argv in cases:
            assert main(argv) == 2, argv
            assert "error:" in capsys.readouterr().err, argv
