"""``repro lint``: AST-based checks of the repo's reproducibility
invariants (determinism, reset completeness, metrics contracts,
hot-path shape, allocation-free disabled tracing).

Programmatic use::

    from repro.lint import run_lint

    report = run_lint(["src/repro"])
    assert report.exit_code(strict=True) == 0

CLI: ``repro lint [PATHS] [--rule IDS] [--format json|text] [--strict]``.
Suppression: ``# repro: noqa[RULE-ID]`` (see :mod:`repro.lint.engine`).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.lint.engine import (
    Finding,
    FileContext,
    LintEngine,
    LintError,
    LintReport,
    Rule,
    select_rules,
)
from repro.lint.report import (
    LINT_SCHEMA,
    render_json,
    render_text,
    report_to_dict,
)
from repro.lint.rules import default_rules


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with the default ruleset.

    ``rules`` filters by id; entries may be comma-separated
    (``["DET001,RST001"]``).  Raises :class:`LintError` on unknown
    rules or unreadable paths — the CLI maps that to exit code 2,
    distinct from exit 1 for violations.
    """
    engine = LintEngine(select_rules(default_rules(), rules))
    return engine.run([Path(p) for p in paths],
                      root=Path(root) if root is not None else None)


__all__: List[str] = [
    "Finding",
    "FileContext",
    "LintEngine",
    "LintError",
    "LintReport",
    "LINT_SCHEMA",
    "Rule",
    "default_rules",
    "render_json",
    "render_text",
    "report_to_dict",
    "run_lint",
    "select_rules",
]
