"""Section 4.7 / Table 4: whole-processor NBTIefficiency.

Penelope's custom mechanisms vs. the two alternatives: paying the full
guardband (1.73) and inverting periodically (1.41, memory-like blocks
only).  Paper's Penelope processor: 1.28.
"""

from repro.analysis import format_table
from repro.api import build_penelope
from repro.core.metric import (
    baseline_block_cost,
    invert_periodically_cost,
    nbti_efficiency,
)

from conftest import SMOKE, write_result


def evaluate(workload):
    # Default specs = the full Penelope configuration (DESIGN.md §4).
    return build_penelope(seed=4321).evaluate(workload)


def test_sec47_processor_efficiency(benchmark, workload):
    # Four representative suites keep the protected re-runs tractable.
    subset = [t for t in workload
              if t.suite in ("specint2000", "office", "kernels", "server")]
    report = benchmark.pedantic(
        evaluate, args=(subset,), rounds=1, iterations=1
    )

    baseline = report.baseline_efficiency
    invert = nbti_efficiency(1.10, 0.02, 1.0)
    penelope = report.efficiency
    if not SMOKE:
        assert penelope < invert < baseline

    rows = [["block", "guardband", "efficiency", "paper eff."]]
    paper_block = {"adder": "1.24", "int_rf": "1.12", "fp_rf": "1.12",
                   "scheduler": "1.24", "dl0+dtlb": "1.09"}
    body = []
    for block in report.block_costs:
        body.append([
            block.name,
            f"{block.guardband:.1%}",
            f"{block.efficiency:.2f}",
            paper_block[block.name],
        ])
    body.append(["penelope processor",
                 f"{report.processor.guardband:.1%}",
                 f"{penelope:.2f}", "1.28"])
    body.append(["invert periodically", "2.0%", f"{invert:.2f}", "1.41"])
    body.append(["full guardband (baseline)", "20.0%",
                 f"{baseline:.2f}", "1.73"])
    text = format_table(rows[0], body,
                        title="Section 4.7 — NBTIefficiency summary")
    text += (
        f"\ncombined CPI: {report.combined_cpi:.4f} (paper: 1.007); "
        f"bias: INT {report.int_rf_bias[0]:.2f}->{report.int_rf_bias[1]:.2f},"
        f" FP {report.fp_rf_bias[0]:.2f}->{report.fp_rf_bias[1]:.2f},"
        f" sched {report.scheduler_bias[0]:.2f}->"
        f"{report.scheduler_bias[1]:.2f}"
    )
    write_result("sec47_efficiency.txt", text)
