"""Trace containers.

The paper's workload is 531 traces of 10M consecutive IA32 instructions
each (Table 1).  A :class:`Trace` here is a named, suite-tagged sequence
of :class:`~repro.uarch.uop.Uop` records; the synthetic generators in
:mod:`repro.workloads` produce them at a scaled-down length.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

from repro.uarch.uop import Uop, UopClass


@dataclass
class Trace:
    """A named sequence of uops from one benchmark."""

    name: str
    suite: str
    uops: List[Uop] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self) -> Iterator[Uop]:
        return iter(self.uops)

    def __getitem__(self, index):
        return self.uops[index]

    def append(self, uop: Uop) -> None:
        self.uops.append(uop)

    def sample(self, stride: int) -> "Trace":
        """Every ``stride``-th uop, for cheap profiling passes."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        return Trace(
            name=f"{self.name}@{stride}",
            suite=self.suite,
            uops=self.uops[::stride],
        )

    def stats(self) -> "TraceStats":
        return TraceStats.from_trace(self)


@dataclass(frozen=True)
class TraceStats:
    """Aggregate composition statistics of a trace."""

    length: int
    class_counts: Dict[str, int]

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceStats":
        counts: Dict[str, int] = {kind.value: 0 for kind in UopClass}
        for uop in trace:
            counts[uop.uop_class.value] += 1
        return cls(length=len(trace), class_counts=counts)

    def fraction(self, kind: UopClass) -> float:
        if self.length == 0:
            return 0.0
        return self.class_counts[kind.value] / self.length

    @property
    def memory_fraction(self) -> float:
        return self.fraction(UopClass.LOAD) + self.fraction(UopClass.STORE)


def concatenate(traces: Sequence[Trace], name: Optional[str] = None) -> Trace:
    """Concatenate traces, renumbering uop sequence ids."""
    if not traces:
        raise ValueError("need at least one trace")
    merged = Trace(
        name=name or "+".join(t.name for t in traces[:3]),
        suite=traces[0].suite,
    )
    seq = 0
    for trace in traces:
        for uop in trace:
            clone = replace(uop, seq=seq)
            merged.append(clone)
            seq += 1
    return merged
