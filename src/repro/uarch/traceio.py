"""Trace serialization.

Traces are expensive to generate at scale and studies want to replay the
*same* trace across configurations; this module persists them as
newline-delimited JSON records (self-describing and diffable) with an
optional gzip layer.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterator

from repro.uarch.trace import Trace
from repro.uarch.uop import Uop, UopClass

FORMAT_VERSION = 1

#: Uop attributes persisted verbatim.
_FIELDS = (
    "seq", "opcode", "src1", "src2", "dst", "src1_value", "src2_value",
    "result_value", "immediate", "has_immediate", "is_fp", "latency",
    "port", "taken", "mispredicted", "tos", "flags", "shift1", "shift2",
    "address", "carry_in", "is_sub",
)


def _open(path: str, mode: str) -> IO:
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace as JSONL (gzipped when the path ends in .gz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with _open(path, "w") as handle:
        header = {
            "format": FORMAT_VERSION,
            "name": trace.name,
            "suite": trace.suite,
            "length": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for uop in trace:
            record = {name: getattr(uop, name) for name in _FIELDS}
            record["uop_class"] = uop.uop_class.value
            handle.write(json.dumps(record) + "\n")


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with _open(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format {header.get('format')!r}"
            )
        trace = Trace(name=header["name"], suite=header["suite"])
        for line in handle:
            record = json.loads(line)
            kind = UopClass(record.pop("uop_class"))
            trace.append(Uop(uop_class=kind, **record))
    if len(trace) != header["length"]:
        raise ValueError(
            f"{path}: header declares {header['length']} uops, "
            f"found {len(trace)}"
        )
    return trace


def iter_trace_records(path: str) -> Iterator[dict]:
    """Stream raw records without materialising Uop objects."""
    with _open(path, "r") as handle:
        handle.readline()  # header
        for line in handle:
            yield json.loads(line)
