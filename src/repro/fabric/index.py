"""SQLite location index over the sharded JSONL store.

The shards are the source of truth; this index is a *rebuildable cache*
mapping ``key -> (shard, offset, length, study, params_digest,
created)`` so single-key lookups and ``records(study=...)`` queries are
a SELECT plus one ``seek`` per hit instead of an O(whole-store) rescan.

Because every indexed byte can be re-derived from the shards, the index
runs with ``synchronous=OFF`` (no fsync per put) and is deleted and
rebuilt from scratch if SQLite reports it damaged.  A per-shard byte
watermark records how far each shard has been indexed; ``refresh``
reads only the appended tail beyond the watermark, so reopening a
million-record store costs a handful of ``fstat`` calls, not a parse of
every record.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["IndexRow", "StoreIndex"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    shard INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    study TEXT NOT NULL,
    params_digest TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS records_study ON records (study, created);
CREATE TABLE IF NOT EXISTS shard_watermarks (
    shard INTEGER PRIMARY KEY,
    indexed_bytes INTEGER NOT NULL
);
"""


class IndexRow(NamedTuple):
    """One record's location: shard file + byte range + query columns."""

    key: str
    shard: int
    offset: int
    length: int
    study: str
    params_digest: str
    created: float


class StoreIndex:
    """Thin typed wrapper around the index database."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        try:
            conn = sqlite3.connect(self.path, timeout=10.0)
            conn.executescript(_SCHEMA)
            conn.execute("PRAGMA synchronous=OFF")
            conn.commit()
            return conn
        except sqlite3.DatabaseError:
            # Damaged cache (e.g. crash while SQLite held its journal):
            # drop it and rebuild from the shards, which own the truth.
            try:
                os.remove(self.path)
            except OSError:
                pass
            conn = sqlite3.connect(self.path, timeout=10.0)
            conn.executescript(_SCHEMA)
            conn.execute("PRAGMA synchronous=OFF")
            conn.commit()
            return conn

    # -- writes ---------------------------------------------------------
    def upsert(
        self,
        rows: List[Tuple[str, int, int, int, str, str, float]],
        watermarks: Optional[Dict[int, int]] = None,
    ) -> None:
        """Insert/replace location rows; optionally advance watermarks.

        Watermarks only ever move forward (``MAX``), so out-of-order
        updates from concurrent appenders can never un-index a tail.
        """
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO records VALUES (?,?,?,?,?,?,?)",
                rows,
            )
            for shard, size in (watermarks or {}).items():
                self._conn.execute(
                    "INSERT INTO shard_watermarks VALUES (?, ?) "
                    "ON CONFLICT(shard) DO UPDATE SET indexed_bytes = "
                    "MAX(indexed_bytes, excluded.indexed_bytes)",
                    (shard, size),
                )

    def reset(self) -> None:
        """Drop every row and watermark (full reindex follows)."""
        with self._conn:
            self._conn.execute("DELETE FROM records")
            self._conn.execute("DELETE FROM shard_watermarks")

    def drop_shard(self, shard: int) -> None:
        """Forget one shard's rows and watermark (compaction rewrite)."""
        with self._conn:
            self._conn.execute(
                "DELETE FROM records WHERE shard = ?", (shard,)
            )
            self._conn.execute(
                "DELETE FROM shard_watermarks WHERE shard = ?", (shard,)
            )

    # -- reads ----------------------------------------------------------
    def watermarks(self) -> Dict[int, int]:
        rows = self._conn.execute(
            "SELECT shard, indexed_bytes FROM shard_watermarks"
        ).fetchall()
        return {int(shard): int(size) for shard, size in rows}

    def lookup(self, key: str) -> Optional[IndexRow]:
        row = self._conn.execute(
            "SELECT * FROM records WHERE key = ?", (key,)
        ).fetchone()
        return IndexRow(*row) if row is not None else None

    def by_study(self, study: Optional[str] = None) -> Iterator[IndexRow]:
        """Location rows ordered by creation time (stable: then by key)."""
        if study is None:
            cursor = self._conn.execute(
                "SELECT * FROM records ORDER BY created, key"
            )
        else:
            cursor = self._conn.execute(
                "SELECT * FROM records WHERE study = ? "
                "ORDER BY created, key",
                (study,),
            )
        for row in cursor:
            yield IndexRow(*row)

    def by_shard(self, shard: int) -> List[IndexRow]:
        rows = self._conn.execute(
            "SELECT * FROM records WHERE shard = ? ORDER BY created, key",
            (shard,),
        ).fetchall()
        return [IndexRow(*row) for row in rows]

    def keys(self) -> List[str]:
        rows = self._conn.execute("SELECT key FROM records").fetchall()
        return [row[0] for row in rows]

    def count(self, study: Optional[str] = None) -> int:
        if study is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM records WHERE study = ?", (study,)
            ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()
