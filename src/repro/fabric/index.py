"""SQLite location index over the sharded JSONL store.

The shards are the source of truth; this index is a *rebuildable cache*
mapping ``key -> (shard, offset, length, study, params_digest,
created)`` so single-key lookups and ``records(study=...)`` queries are
a SELECT plus one ``seek`` per hit instead of an O(whole-store) rescan.

Because every indexed byte can be re-derived from the shards, the index
runs with ``synchronous=OFF`` (no fsync per put) and is deleted and
rebuilt from scratch if SQLite reports it damaged.  A per-shard byte
watermark records how far each shard has been indexed; ``refresh``
reads only the appended tail beyond the watermark, so reopening a
million-record store costs a handful of ``fstat`` calls, not a parse of
every record.

The delete-and-rebuild recovery is only safe for the index's *owner*.
A second process opening the same store (a fabric worker, the sweep
service's query path, a human running ``repro results``) may catch the
owner mid-write — SQLite transiently reports a hot journal or a locked
file as an error — and deleting the file under a live writer corrupts
the owner's connection.  ``read_only=True`` therefore connects with the
``mode=ro`` URI, retries transient errors with exponential backoff,
and on persistent failure degrades to *index-miss* (empty results)
instead of raising or deleting: the store treats a missing index entry
as a cache miss, which is always correct, just slower.
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["IndexRow", "StoreIndex"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    shard INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    study TEXT NOT NULL,
    params_digest TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS records_study ON records (study, created);
CREATE TABLE IF NOT EXISTS shard_watermarks (
    shard INTEGER PRIMARY KEY,
    indexed_bytes INTEGER NOT NULL
);
"""


class IndexRow(NamedTuple):
    """One record's location: shard file + byte range + query columns."""

    key: str
    shard: int
    offset: int
    length: int
    study: str
    params_digest: str
    created: float


class StoreIndex:
    """Thin typed wrapper around the index database.

    ``read_only=True`` is the non-owner mode: connect ``mode=ro``,
    retry transient errors with backoff, never delete the file, and
    answer "not indexed" instead of raising when the owner's writes
    keep the database unreadable (see the module docstring).
    """

    def __init__(self, path: str, read_only: bool = False,
                 retries: int = 3, backoff: float = 0.02) -> None:
        self.path = path
        self.read_only = read_only
        self._retries = max(1, retries)
        self._backoff = backoff
        self._conn: Optional[sqlite3.Connection] = (
            self._open_read_only() if read_only else self._open())

    def _open(self) -> sqlite3.Connection:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        try:
            conn = sqlite3.connect(self.path, timeout=10.0)
            conn.executescript(_SCHEMA)
            conn.execute("PRAGMA synchronous=OFF")
            conn.commit()
            return conn
        except sqlite3.DatabaseError:
            # Damaged cache (e.g. crash while SQLite held its journal):
            # drop it and rebuild from the shards, which own the truth.
            # Only the owner may do this — a reader would be deleting
            # the file under the owner's live connection.
            try:
                os.remove(self.path)
            except OSError:
                pass
            conn = sqlite3.connect(self.path, timeout=10.0)
            conn.executescript(_SCHEMA)
            conn.execute("PRAGMA synchronous=OFF")
            conn.commit()
            return conn

    def _open_read_only(self) -> Optional[sqlite3.Connection]:
        """Best-effort ``mode=ro`` connect; ``None`` when unreadable."""
        if not os.path.exists(self.path):
            return None
        delay = self._backoff
        for __ in range(self._retries):
            conn: Optional[sqlite3.Connection] = None
            try:
                # A short busy-timeout on purpose: a blocked reader
                # should degrade to the shard-tail overlay quickly,
                # not stall queries behind the owner's lock.
                conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True, timeout=0.1)
                conn.execute(
                    "SELECT 1 FROM sqlite_master LIMIT 1").fetchone()
                return conn
            except sqlite3.Error:
                if conn is not None:
                    try:
                        conn.close()
                    except sqlite3.Error:
                        pass
                time.sleep(delay)
                delay *= 2
        return None

    def _read(self, query: str, params: Tuple[Any, ...],
              fetch: str, default: Any) -> Any:
        """Execute a read; in read-only mode retry, then degrade.

        A writer mid-transaction makes reads fail transiently
        (``database is locked``, or ``DatabaseError`` on a half-written
        page).  The owner never sees these (it *is* the writer), so
        non-read-only connections execute directly and let errors
        propagate as before.
        """
        if not self.read_only:
            assert self._conn is not None
            cursor = self._conn.execute(query, params)
            return (cursor.fetchone() if fetch == "one"
                    else cursor.fetchall())
        delay = self._backoff
        for __ in range(self._retries):
            if self._conn is None:
                self._conn = self._open_read_only()
            if self._conn is None:
                return default
            try:
                cursor = self._conn.execute(query, params)
                return (cursor.fetchone() if fetch == "one"
                        else cursor.fetchall())
            except sqlite3.Error:
                # Drop the connection: the next attempt reopens, which
                # also recovers from the owner rebuilding the file.
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
                time.sleep(delay)
                delay *= 2
        return default

    def _check_writable(self) -> None:
        if self.read_only:
            raise RuntimeError(
                f"{self.path}: index opened read-only; only the store "
                f"owner may write it")

    # -- writes ---------------------------------------------------------
    def upsert(
        self,
        rows: List[Tuple[str, int, int, int, str, str, float]],
        watermarks: Optional[Dict[int, int]] = None,
    ) -> None:
        """Insert/replace location rows; optionally advance watermarks.

        Watermarks only ever move forward (``MAX``), so out-of-order
        updates from concurrent appenders can never un-index a tail.
        """
        self._check_writable()
        assert self._conn is not None
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO records VALUES (?,?,?,?,?,?,?)",
                rows,
            )
            for shard, size in (watermarks or {}).items():
                self._conn.execute(
                    "INSERT INTO shard_watermarks VALUES (?, ?) "
                    "ON CONFLICT(shard) DO UPDATE SET indexed_bytes = "
                    "MAX(indexed_bytes, excluded.indexed_bytes)",
                    (shard, size),
                )

    def reset(self) -> None:
        """Drop every row and watermark (full reindex follows)."""
        self._check_writable()
        assert self._conn is not None
        with self._conn:
            self._conn.execute("DELETE FROM records")
            self._conn.execute("DELETE FROM shard_watermarks")

    def drop_shard(self, shard: int) -> None:
        """Forget one shard's rows and watermark (compaction rewrite)."""
        self._check_writable()
        assert self._conn is not None
        with self._conn:
            self._conn.execute(
                "DELETE FROM records WHERE shard = ?", (shard,)
            )
            self._conn.execute(
                "DELETE FROM shard_watermarks WHERE shard = ?", (shard,)
            )

    # -- reads ----------------------------------------------------------
    def watermarks(self) -> Dict[int, int]:
        rows = self._read(
            "SELECT shard, indexed_bytes FROM shard_watermarks", (),
            "all", [])
        return {int(shard): int(size) for shard, size in rows}

    def lookup(self, key: str) -> Optional[IndexRow]:
        row = self._read(
            "SELECT * FROM records WHERE key = ?", (key,), "one", None)
        return IndexRow(*row) if row is not None else None

    def by_study(self, study: Optional[str] = None) -> Iterator[IndexRow]:
        """Location rows ordered by creation time (stable: then by key)."""
        if study is None:
            rows = self._read(
                "SELECT * FROM records ORDER BY created, key", (),
                "all", [])
        else:
            rows = self._read(
                "SELECT * FROM records WHERE study = ? "
                "ORDER BY created, key", (study,), "all", [])
        for row in rows:
            yield IndexRow(*row)

    def by_shard(self, shard: int) -> List[IndexRow]:
        rows = self._read(
            "SELECT * FROM records WHERE shard = ? ORDER BY created, key",
            (shard,), "all", [])
        return [IndexRow(*row) for row in rows]

    def keys(self) -> List[str]:
        rows = self._read("SELECT key FROM records", (), "all", [])
        return [row[0] for row in rows]

    def count(self, study: Optional[str] = None) -> int:
        if study is None:
            row = self._read(
                "SELECT COUNT(*) FROM records", (), "one", (0,))
        else:
            row = self._read(
                "SELECT COUNT(*) FROM records WHERE study = ?",
                (study,), "one", (0,))
        return int(row[0])

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
