"""Integration tests for the whole Penelope processor."""

import pytest

from repro.core import PenelopeProcessor
from repro.core.metric import BASELINE_GUARDBAND
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def report():
    workload = generate_workload(
        traces_per_suite=1, length=4000,
        suites=["specint2000", "office"], seed=21,
    )
    return PenelopeProcessor(seed=21).evaluate(workload)


class TestPenelopeReport:
    def test_beats_baseline(self, report):
        assert report.efficiency < report.baseline_efficiency
        assert report.baseline_efficiency == pytest.approx(1.73, abs=0.01)

    def test_bias_improves_everywhere(self, report):
        base, prot = report.int_rf_bias
        assert prot < base
        base, prot = report.fp_rf_bias
        assert prot < base
        base, prot = report.scheduler_bias
        assert prot < base

    def test_combined_cpi_is_small(self, report):
        # The paper measures 1.007; warmup effects leave us within a few
        # percent.
        assert 1.0 <= report.combined_cpi < 1.06

    def test_adder_guardband_below_baseline(self, report):
        assert report.adder_guardband < BASELINE_GUARDBAND
        # With utilisation in the 15-40% band the guardband lands in the
        # Figure 5 range.
        assert 0.02 <= report.adder_guardband <= 0.12

    def test_block_costs_cover_all_five_blocks(self, report):
        names = {block.name for block in report.block_costs}
        assert names == {"adder", "int_rf", "fp_rf", "scheduler",
                         "dl0+dtlb"}
        for block in report.block_costs:
            assert block.efficiency < 1.73

    def test_processor_guardband_is_max_of_blocks(self, report):
        assert report.processor.guardband == pytest.approx(
            max(b.guardband for b in report.block_costs)
        )

    def test_run_counts(self, report):
        assert len(report.baseline) == len(report.protected) == 2


class TestPenelopeConfiguration:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            PenelopeProcessor().evaluate([])

    def test_explicit_policy_is_used(self):
        from repro.core.memory_like import PAPER_SCHEDULER_POLICY

        workload = generate_workload(traces_per_suite=1, length=1000,
                                     suites=["kernels"], seed=3)
        processor = PenelopeProcessor(
            scheduler_policy=PAPER_SCHEDULER_POLICY, seed=3
        )
        report = processor.evaluate(workload)
        assert report.efficiency < report.baseline_efficiency

    def test_derive_policy_smoke(self):
        from repro.workloads import TraceGenerator

        trace = TraceGenerator(seed=4).generate("office", length=1000)
        policy = PenelopeProcessor().derive_policy(trace)
        assert "flags" in policy
        assert len(policy["src1_data"]) == 32
