"""Tests for trace serialization."""

import json
import os

import pytest

from repro.uarch.traceio import (
    iter_trace_records,
    load_trace,
    save_trace,
    stream_trace,
)
from repro.workloads import TraceGenerator


@pytest.fixture()
def trace():
    return TraceGenerator(seed=3).generate("multimedia", length=400)


def assert_traces_equal(lhs, rhs):
    assert lhs.name == rhs.name
    assert lhs.suite == rhs.suite
    assert len(lhs) == len(rhs)
    for original, restored in zip(lhs, rhs):
        assert original == restored


class TestRoundTrip:
    def test_plain_jsonl(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.suite == trace.suite
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original == restored

    def test_gzip(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl.gz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        # gzip actually compresses.
        plain = str(tmp_path / "t.jsonl")
        save_trace(trace, plain)
        assert os.path.getsize(path) < os.path.getsize(plain)

    def test_replay_equivalence(self, trace, tmp_path):
        from repro.uarch import TraceDrivenCore

        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = TraceDrivenCore().run(trace)
        b = TraceDrivenCore().run(loaded)
        assert a.cycles == b.cycles
        assert a.dl0.misses == b.dl0.misses


class TestPackedFormat:
    """v2 (default) vs the legacy v1 object records."""

    def test_v1_and_v2_load_identically(self, trace, tmp_path):
        v1 = str(tmp_path / "v1.jsonl")
        v2 = str(tmp_path / "v2.jsonl")
        save_trace(trace, v1, format=1)
        save_trace(trace, v2)  # v2 is the default
        assert_traces_equal(load_trace(v1), load_trace(v2))
        assert_traces_equal(load_trace(v2), trace)

    def test_v2_is_smaller(self, trace, tmp_path):
        v1 = str(tmp_path / "v1.jsonl")
        v2 = str(tmp_path / "v2.jsonl")
        save_trace(trace, v1, format=1)
        save_trace(trace, v2)
        # The packed encoding drops every repeated key; anything short
        # of a 2x cut means the format regressed to objects.
        assert os.path.getsize(v2) * 2 < os.path.getsize(v1)

    def test_v2_header_is_self_describing(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        header = json.loads(open(path).readline())
        assert header["format"] == 2
        assert header["fields"][0] == "seq"
        assert "alu" in header["classes"]

    def test_unknown_write_format_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_trace(trace, str(tmp_path / "t.jsonl"), format=3)

    def test_v1_to_v2_rewrite_round_trip(self, trace, tmp_path):
        """Migrating an old v1 file to v2 preserves every uop."""
        v1 = str(tmp_path / "old.jsonl")
        save_trace(trace, v1, format=1)
        migrated = str(tmp_path / "new.jsonl")
        save_trace(load_trace(v1), migrated)
        assert_traces_equal(load_trace(migrated), trace)


class TestStreaming:
    def test_iter_records(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        records = list(iter_trace_records(path))
        assert len(records) == len(trace)
        assert records[0]["seq"] == 0
        assert "uop_class" in records[0]

    def test_iter_records_shape_identical_across_formats(self, trace,
                                                         tmp_path):
        v1 = str(tmp_path / "v1.jsonl")
        v2 = str(tmp_path / "v2.jsonl")
        save_trace(trace, v1, format=1)
        save_trace(trace, v2)
        assert list(iter_trace_records(v1)) == list(iter_trace_records(v2))

    @pytest.mark.parametrize("fmt", [1, 2])
    @pytest.mark.parametrize("chunk", [1, 7, 4096])
    def test_stream_trace_equals_load(self, trace, tmp_path, fmt, chunk):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path, format=fmt)
        streamed = list(stream_trace(path, chunk=chunk))
        for original, restored in zip(trace, streamed):
            assert original == restored
        assert len(streamed) == len(trace)

    def test_stream_trace_gzip(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl.gz")
        save_trace(trace, path)
        assert len(list(stream_trace(path))) == len(trace)

    def test_stream_trace_core_replay_equivalence(self, trace, tmp_path):
        from repro.uarch import TraceDrivenCore

        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        eager = TraceDrivenCore().run(trace)
        lazy = TraceDrivenCore().run(stream_trace(path))
        assert eager.uops == lazy.uops
        assert eager.cycles == lazy.cycles
        assert eager.dl0.misses == lazy.dl0.misses

    def test_stream_trace_validates_header_eagerly(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ValueError, match="empty"):
            stream_trace(path)  # before the first uop is pulled

    def test_stream_trace_truncation_detected(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-10])
        with pytest.raises(ValueError, match="header declares"):
            list(stream_trace(path))

    def test_stream_trace_rejects_bad_chunk(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        with pytest.raises(ValueError, match="chunk"):
            stream_trace(path, chunk=0)


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"format": 99, "name": "x", "suite": "y", '
                         '"length": 0}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_truncated_file_rejected(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-10])
        with pytest.raises(ValueError, match="header declares"):
            load_trace(path)

    @pytest.mark.parametrize("missing", ["name", "suite", "length"])
    def test_header_missing_key_names_file(self, tmp_path, missing):
        """A missing header key used to surface as a bare KeyError."""
        path = str(tmp_path / "broken.jsonl")
        header = {"format": 1, "name": "x", "suite": "y", "length": 0}
        del header[missing]
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
        with pytest.raises(ValueError) as excinfo:
            load_trace(path)
        assert "broken.jsonl" in str(excinfo.value)
        assert missing in str(excinfo.value)

    def test_iter_records_validates_header(self, tmp_path):
        """iter_trace_records used to skip header validation entirely."""
        path = str(tmp_path / "broken.jsonl")
        with open(path, "w") as handle:
            handle.write('{"format": 1, "name": "x"}\n')
            handle.write('{"seq": 0}\n')
        with pytest.raises(ValueError) as excinfo:
            list(iter_trace_records(path))
        assert "broken.jsonl" in str(excinfo.value)

        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        with pytest.raises(ValueError, match="empty"):
            list(iter_trace_records(empty))

        bad_version = str(tmp_path / "bad.jsonl")
        with open(bad_version, "w") as handle:
            handle.write('{"format": 99, "name": "x", "suite": "y", '
                         '"length": 0}\n')
        with pytest.raises(ValueError, match="format"):
            list(iter_trace_records(bad_version))

    def test_non_json_header_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
        with pytest.raises(ValueError, match="garbage.jsonl"):
            load_trace(path)

    def test_v2_reordered_fields_rejected(self, trace, tmp_path):
        """The positional decode must refuse a foreign field layout
        rather than misassign every value silently."""
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        lines = open(path).readlines()
        header = json.loads(lines[0])
        header["fields"][2], header["fields"][3] = (
            header["fields"][3], header["fields"][2])
        lines[0] = json.dumps(header) + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="field"):
            load_trace(path)
        with pytest.raises(ValueError, match="field"):
            list(iter_trace_records(path))

    def test_v2_corrupt_record_names_file(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        lines = open(path).readlines()
        truncated_row = json.dumps(json.loads(lines[1])[:5])
        negative_class = json.dumps(
            [-1 if i == 1 else v
             for i, v in enumerate(json.loads(lines[1]))])
        for bad_record in (
            '{"seq": 0, "uop_class": "alu"}',  # object, not array
            negative_class,                    # class index out of range
            truncated_row,                     # wrong arity
        ):
            with open(path, "w") as handle:
                handle.write(lines[0])
                handle.write(bad_record + "\n")
            with pytest.raises(ValueError, match="t.jsonl"):
                load_trace(path)
            with pytest.raises(ValueError, match="t.jsonl"):
                list(iter_trace_records(path))

    def test_v1_corrupt_record_names_file(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path, format=1)
        lines = open(path).readlines()
        bad = json.loads(lines[1])
        bad["uop_class"] = "xyz"  # not a UopClass value
        with open(path, "w") as handle:
            handle.write(lines[0])
            handle.write(json.dumps(bad) + "\n")
        with pytest.raises(ValueError, match="t.jsonl"):
            load_trace(path)

    def test_bad_length_type_rejected(self, tmp_path):
        path = str(tmp_path / "badlen.jsonl")
        with open(path, "w") as handle:
            handle.write('{"format": 1, "name": "x", "suite": "y", '
                         '"length": "lots"}\n')
        with pytest.raises(ValueError, match="length"):
            load_trace(path)
