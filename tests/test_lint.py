"""Tests of the ``repro lint`` engine and ruleset.

Every rule is covered by (at least) one violating fixture the engine
must flag, one clean fixture it must pass, and one suppressed fixture;
plus: JSON schema shape, CLI exit-code semantics, and the self-check
that the committed tree lints clean.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import (
    LintError,
    default_rules,
    render_json,
    render_text,
    report_to_dict,
    run_lint,
    select_rules,
)

SRC = Path(repro.__file__).parent


def lint_snippet(tmp_path, relpath, source, rules=None):
    """Write one fixture file at a rule-relevant path and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([path], rules=rules, root=tmp_path)


def rule_ids(report):
    return [f.rule for f in report.findings]


# ----------------------------------------------------------------------
# DET001 — kernel determinism
# ----------------------------------------------------------------------
class TestDet001:
    def test_flags_module_level_random(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/ports.py",
            "import random\n"
            "def pick(n):\n"
            "    return random.randrange(n)\n",
            rules=["DET001"],
        )
        assert rule_ids(report) == ["DET001"]
        assert "random.randrange" in report.findings[0].message

    def test_flags_clock_and_urandom(self, tmp_path):
        report = lint_snippet(
            tmp_path, "nbti/stress.py",
            "import os\nimport time\n"
            "def stamp():\n"
            "    return time.time(), os.urandom(4)\n",
            rules=["DET001"],
        )
        assert sorted(rule_ids(report)) == ["DET001", "DET001"]

    def test_flags_from_import_and_alias(self, tmp_path):
        report = lint_snippet(
            tmp_path, "circuits/aging.py",
            "from random import randint\n"
            "import random as rnd\n"
            "def roll():\n"
            "    return rnd.random()\n",
            rules=["DET001"],
        )
        assert rule_ids(report) == ["DET001", "DET001"]

    def test_clean_seeded_instance(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/ports.py",
            "import random\n"
            "def pick(n, seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.randrange(n)\n",
            rules=["DET001"],
        )
        assert report.findings == []

    def test_exempt_outside_kernel_dirs(self, tmp_path):
        source = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_snippet(tmp_path, "obs/clock.py", source,
                            rules=["DET001"]).findings == []
        assert lint_snippet(tmp_path, "analysis/clock.py", source,
                            rules=["DET001"]).findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/ports.py",
            "import random\n"
            "def pick(n):\n"
            "    return random.randrange(n)  # repro: noqa[DET001]\n",
            rules=["DET001"],
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["DET001"]


# ----------------------------------------------------------------------
# DET002 — set iteration
# ----------------------------------------------------------------------
class TestDet002:
    def test_flags_for_loop_over_set(self, tmp_path):
        report = lint_snippet(
            tmp_path, "anywhere.py",
            "def f(items, out):\n"
            "    for item in set(items):\n"
            "        out.append(item)\n",
            rules=["DET002"],
        )
        assert rule_ids(report) == ["DET002"]

    def test_flags_comprehension_and_list_of_set(self, tmp_path):
        report = lint_snippet(
            tmp_path, "anywhere.py",
            "def f(a, b):\n"
            "    rows = [x for x in set(a) | set(b)]\n"
            "    return rows, list({1, 2, 3})\n",
            rules=["DET002"],
        )
        assert rule_ids(report) == ["DET002", "DET002"]

    def test_clean_sorted_wrap(self, tmp_path):
        report = lint_snippet(
            tmp_path, "anywhere.py",
            "def f(a, b):\n"
            "    for x in sorted(set(a)):\n"
            "        pass\n"
            "    return sorted(x for x in set(a) | set(b))\n",
            rules=["DET002"],
        )
        assert report.findings == []

    def test_severity_is_warning(self, tmp_path):
        report = lint_snippet(
            tmp_path, "anywhere.py",
            "def f(items):\n"
            "    return [i for i in set(items)]\n",
            rules=["DET002"],
        )
        assert report.findings[0].severity == "warning"
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_suppressed_file_wide(self, tmp_path):
        report = lint_snippet(
            tmp_path, "anywhere.py",
            "# repro: noqa-file[DET002]\n"
            "def f(items):\n"
            "    return [i for i in set(items)]\n",
            rules=["DET002"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# HOT001 — __slots__ in hot-path modules
# ----------------------------------------------------------------------
class TestHot001:
    def test_flags_plain_class(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/cache.py",
            "class Line:\n"
            "    def __init__(self):\n"
            "        self.tag = None\n",
            rules=["HOT001"],
        )
        assert rule_ids(report) == ["HOT001"]
        assert "Line" in report.findings[0].message

    def test_clean_slots_dataclass_enum_exception(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/cache.py",
            "import enum\n"
            "from dataclasses import dataclass\n"
            "class Line:\n"
            "    __slots__ = ('tag',)\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Config:\n"
            "    ways: int = 8\n"
            "class State(enum.Enum):\n"
            "    VALID = 'valid'\n"
            "class CacheError(Exception):\n"
            "    pass\n",
            rules=["HOT001"],
        )
        assert report.findings == []

    def test_not_designated_module(self, tmp_path):
        report = lint_snippet(
            tmp_path, "analysis/report.py",
            "class Table:\n"
            "    pass\n",
            rules=["HOT001"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/core.py",
            "class Debug:  # repro: noqa[HOT001]\n"
            "    pass\n",
            rules=["HOT001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# RST001 — reset() completeness
# ----------------------------------------------------------------------
class TestRst001:
    def test_flags_metrics_without_reset(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/counter.py",
            "class Widget:\n"
            "    def metrics(self):\n"
            "        return {}\n",
            rules=["RST001"],
        )
        assert rule_ids(report) == ["RST001"]
        assert "no reset()" in report.findings[0].message

    def test_flags_unreset_counter(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/counter.py",
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "        self.misses = 0\n"
            "    def reset(self):\n"
            "        self.hits = 0\n",
            rules=["RST001"],
        )
        assert rule_ids(report) == ["RST001"]
        assert "'misses'" in report.findings[0].message

    def test_clean_direct_and_helper_reset(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/counter.py",
            "class Direct:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "    def reset(self):\n"
            "        self.hits = 0\n"
            "    def metrics(self):\n"
            "        return {'hits': self.hits}\n"
            "class ViaHelper:\n"
            "    def __init__(self):\n"
            "        self._init_state()\n"
            "    def _init_state(self):\n"
            "        self.count = 0\n"
            "    def reset(self):\n"
            "        self._init_state()\n",
            rules=["RST001"],
        )
        assert report.findings == []

    def test_protocol_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path, "metrics/proto.py",
            "from typing import Protocol\n"
            "class MetricSource(Protocol):\n"
            "    def metrics(self):\n"
            "        ...\n",
            rules=["RST001"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/counter.py",
            "class Widget:\n"
            "    def metrics(self):  # repro: noqa[RST001]\n"
            "        return {}\n",
            rules=["RST001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# REG001 — registry spec_paths resolve
# ----------------------------------------------------------------------
class TestReg001:
    def test_flags_bogus_path(self, tmp_path):
        report = lint_snippet(
            tmp_path, "experiments/registry.py",
            "def register_study(name, description, defaults,\n"
            "                   spec_paths=()):\n"
            "    pass\n"
            "register_study('x', 'd', {},\n"
            "               spec_paths={'ratio': 'protection.dl9.nope'})\n",
            rules=["REG001"],
        )
        assert rule_ids(report) == ["REG001"]
        assert "protection.dl9.nope" in report.findings[0].message

    def test_flags_bare_segment(self, tmp_path):
        report = lint_snippet(
            tmp_path, "experiments/registry.py",
            "register_study('x', 'd', {}, spec_paths={'k': 'ratio'})\n",
            rules=["REG001"],
        )
        assert rule_ids(report) == ["REG001"]

    def test_clean_valid_paths_with_spread(self, tmp_path):
        report = lint_snippet(
            tmp_path, "experiments/registry.py",
            "_SHARED = {\n"
            "    'suite': 'workload.suites',\n"
            "    'seed': 'workload.seed',\n"
            "}\n"
            "register_study('x', 'd', {}, spec_paths={\n"
            "    **_SHARED,\n"
            "    'ratio': 'protection.dl0.params.ratio',\n"
            "    'size_kb': 'processor.dl0.size_kb',\n"
            "})\n",
            rules=["REG001"],
        )
        assert report.findings == []

    def test_real_registry_is_clean(self):
        report = run_lint(
            [SRC / "experiments" / "registry.py"], rules=["REG001"]
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "experiments/registry.py",
            "register_study('x', 'd', {},\n"
            "               spec_paths={'k': 'bogus.path'})"
            "  # repro: noqa[REG001]\n",
            rules=["REG001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# OBS001 — allocation-free disabled tracing
# ----------------------------------------------------------------------
class TestObs001:
    def test_flags_allocation_before_guard(self, tmp_path):
        report = lint_snippet(
            tmp_path, "obs/trace.py",
            "def instant(self, name, **attrs):\n"
            "    label = f'span-{name}'\n"
            "    if not self.enabled:\n"
            "        return None\n"
            "    return label\n",
            rules=["OBS001"],
        )
        assert rule_ids(report) == ["OBS001"]
        assert "before the enabled-check" in report.findings[0].message

    def test_flags_unguarded_tracer_method(self, tmp_path):
        report = lint_snippet(
            tmp_path, "obs/trace.py",
            "class Tracer:\n"
            "    def begin(self):\n"
            "        token = object()\n"
            "        if not self.enabled:\n"
            "            return None\n"
            "        return token\n",
            rules=["OBS001"],
        )
        ids = rule_ids(report)
        # both the guard-position and the pre-guard allocation fire
        assert "OBS001" in ids and len(ids) == 2

    def test_clean_guard_first(self, tmp_path):
        report = lint_snippet(
            tmp_path, "obs/trace.py",
            "class Tracer:\n"
            "    def span(self, name, **attrs):\n"
            "        if not self.enabled:\n"
            "            return None\n"
            "        return object()\n"
            "    def begin(self):\n"
            "        if not self.enabled:\n"
            "            return None\n"
            "        return (1, 2)\n"
            "    def end(self, token, name, **attrs):\n"
            "        if token is None:\n"
            "            return\n"
            "        self._record(name, token, attrs)\n"
            "    def instant(self, name, **attrs):\n"
            "        if not self.enabled:\n"
            "            return\n"
            "        self._record(name, None, attrs)\n"
            "    def record_span(self, name, wall, duration, **attrs):\n"
            "        if not self.enabled:\n"
            "            return\n"
            "        self._record(name, wall, attrs)\n"
            "    def _record(self, *args):\n"
            "        pass\n",
            rules=["OBS001"],
        )
        assert report.findings == []

    def test_only_applies_to_trace_module(self, tmp_path):
        report = lint_snippet(
            tmp_path, "obs/log.py",
            "def emit(self, name):\n"
            "    label = f'{name}!'\n"
            "    if not self.enabled:\n"
            "        return None\n"
            "    return label\n",
            rules=["OBS001"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "obs/trace.py",
            "def instant(self, name):\n"
            "    label = f'span-{name}'  # repro: noqa[OBS001]\n"
            "    if not self.enabled:\n"
            "        return None\n"
            "    return label\n",
            rules=["OBS001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# FAB001 — fabric writes go through the crash-safe helpers
# ----------------------------------------------------------------------
class TestFab001:
    def test_flags_append_mode_open_in_fabric(self, tmp_path):
        report = lint_snippet(
            tmp_path, "fabric/journal.py",
            "def save(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n",
            rules=["FAB001"],
        )
        assert rule_ids(report) == ["FAB001", "FAB001"]
        assert "append_record" in report.findings[0].message

    def test_flags_write_mode_keyword_and_writelines(self, tmp_path):
        report = lint_snippet(
            tmp_path, "experiments/store.py",
            "def dump(path, lines):\n"
            "    handle = open(path, mode='w')\n"
            "    handle.writelines(lines)\n",
            rules=["FAB001"],
        )
        assert rule_ids(report) == ["FAB001", "FAB001"]

    def test_flags_dynamic_mode(self, tmp_path):
        report = lint_snippet(
            tmp_path, "fabric/store.py",
            "def touch(path, mode):\n"
            "    return open(path, mode)\n",
            rules=["FAB001"],
        )
        assert rule_ids(report) == ["FAB001"]
        assert "non-constant mode" in report.findings[0].message

    def test_clean_reads_and_helper_calls(self, tmp_path):
        report = lint_snippet(
            tmp_path, "fabric/store.py",
            "from repro.fabric.io import append_record, atomic_write_text\n"
            "def load(path):\n"
            "    with open(path, 'rb') as handle:\n"
            "        return handle.read()\n"
            "def put(path, payload, text):\n"
            "    append_record(path, payload)\n"
            "    atomic_write_text(path, text)\n",
            rules=["FAB001"],
        )
        assert report.findings == []

    def test_exempt_io_module_and_out_of_scope_files(self, tmp_path):
        source = (
            "import os\n"
            "def raw(fd, data):\n"
            "    os.write(fd, data)\n"
            "    open('x', 'w')\n"
        )
        assert lint_snippet(tmp_path, "fabric/io.py", source,
                            rules=["FAB001"]).findings == []
        assert lint_snippet(tmp_path, "obs/log.py", source,
                            rules=["FAB001"]).findings == []

    def test_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path, "fabric/lease.py",
            "def note(path, text):\n"
            "    open(path, 'w').write(text)  # repro: noqa[FAB001]\n",
            rules=["FAB001"],
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["FAB001", "FAB001"]


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        report = lint_snippet(tmp_path, "broken.py", "def f(:\n")
        assert rule_ids(report) == ["SYN001"]
        assert report.exit_code() == 1

    def test_unknown_rule_raises_lint_error(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(LintError, match="NOPE001"):
            run_lint([tmp_path / "m.py"], rules=["NOPE001"])

    def test_missing_path_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            run_lint([tmp_path / "absent.py"])

    def test_comma_separated_rule_selection(self):
        rules = select_rules(default_rules(), ["DET001,RST001"])
        assert [r.id for r in rules] == ["DET001", "RST001"]
        rules = select_rules(default_rules(), ["DET001", "OBS001"])
        assert [r.id for r in rules] == ["DET001", "OBS001"]

    def test_noqa_without_id_suppresses_everything(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/ports.py",
            "import random\n"
            "def pick(n):\n"
            "    return random.randrange(n)  # repro: noqa\n",
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_findings_sorted_and_rendered(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/zz.py",
            "class B:\n"
            "    def metrics(self):\n"
            "        return {}\n"
            "class A:\n"
            "    def metrics(self):\n"
            "        return {}\n",
            rules=["RST001"],
        )
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        text = render_text(report)
        assert "uarch/zz.py:2" in text
        assert "error(s)" in text


# ----------------------------------------------------------------------
# JSON schema
# ----------------------------------------------------------------------
class TestJsonOutput:
    def test_schema_shape(self, tmp_path):
        report = lint_snippet(
            tmp_path, "uarch/counter.py",
            "class Widget:\n"
            "    def metrics(self):\n"
            "        return {}\n",
        )
        payload = json.loads(render_json(report, strict=True))
        assert payload["schema"] == "repro.lint/1"
        assert payload["version"] == repro.__version__
        assert payload["files"] == 1
        assert payload["strict"] is True
        assert payload["exit_code"] == 1
        assert {r["id"] for r in payload["rules"]} == {
            "DET001", "DET002", "HOT001", "RST001", "REG001", "OBS001",
            "FAB001",
        }
        for rule in payload["rules"]:
            assert rule["severity"] in ("error", "warning")
            assert rule["description"]
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "severity"}
        assert payload["counts"] == {
            "errors": 1, "warnings": 0, "suppressed": 0
        }

    def test_clean_tree_exit_code_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        payload = report_to_dict(run_lint([tmp_path / "ok.py"]))
        assert payload["exit_code"] == 0
        assert payload["findings"] == []


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestLintCli:
    def test_violations_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "uarch" / "ports.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n"
                       "def f():\n"
                       "    return random.random()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_clean_exit_0_and_json(self, tmp_path, capsys):
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        assert main(["lint", str(ok), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"

    def test_internal_error_exit_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "gone.py")]) == 2
        assert main(["lint", "--rule", "NOPE001", "."]) == 2

    def test_rule_filter_and_list_rules(self, tmp_path, capsys):
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        assert main(["lint", str(ok), "--rule", "DET001,DET002"]) == 0
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "HOT001", "RST001",
                        "REG001", "OBS001", "FAB001"):
            assert rule_id in out

    def test_strict_fails_on_warning(self, tmp_path, capsys):
        warn = tmp_path / "w.py"
        warn.write_text("def f(items):\n"
                        "    return [i for i in set(items)]\n")
        assert main(["lint", str(warn)]) == 0
        assert main(["lint", str(warn), "--strict"]) == 1


# ----------------------------------------------------------------------
# Self-check: the committed tree lints clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_package_tree_is_clean_strict(self):
        report = run_lint([SRC])
        assert render_text(report, strict=True) and report.findings == [], (
            "committed tree has lint violations:\n"
            + render_text(report, strict=True)
        )
        assert report.exit_code(strict=True) == 0
        assert report.files > 50

    def test_cli_self_check(self, capsys):
        assert main(["lint", str(SRC), "--strict"]) == 0
