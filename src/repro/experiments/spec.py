"""Declarative sweep specifications.

A sweep is a study name, a dict of base parameters, and a *grid*: an
ordered mapping of parameter name to the values that axis takes.  The
spec expands into the cartesian product of all grid axes, each point a
frozen :class:`ExperimentPoint` with a stable content hash so results
can be cached and re-identified across runs (see
:mod:`repro.experiments.store`).

Grid axes can also be parsed from CLI strings (``ratio=0.4,0.5,0.6``)
with automatic scalar coercion — see :func:`parse_grid_option`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

#: Scalars allowed as parameter values (must survive a JSON round-trip).
SCALAR_TYPES = (str, int, float, bool, type(None))


def _normalise(value: Any) -> Any:
    """Canonicalise a parameter value for hashing/serialisation."""
    if isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    raise TypeError(
        f"experiment parameters must be JSON scalars or sequences, "
        f"got {type(value).__name__}: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_key(study: str, params: Mapping[str, Any]) -> str:
    """Stable content hash of one (study, params) design point."""
    blob = canonical_json(
        {"study": study, "params": {k: _normalise(v)
                                    for k, v in params.items()}}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class ExperimentPoint:
    """One fully-bound design point of a sweep."""

    study: str
    params: Tuple[Tuple[str, Any], ...]

    @classmethod
    def from_dict(cls, study: str,
                  params: Mapping[str, Any]) -> "ExperimentPoint":
        items = tuple(
            (k, _freeze(v)) for k, v in sorted(params.items())
        )
        return cls(study=study, params=items)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key(self) -> str:
        return point_key(self.study, self.as_dict())

    def describe(self, skip: Sequence[str] = ()) -> str:
        """Compact ``k=v`` rendering for tables and logs."""
        return " ".join(
            f"{k}={v}" for k, v in self.params if k not in skip
        )


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class SweepSpec:
    """A declarative parameter sweep: base params × grid axes.

    Examples
    --------
    >>> spec = SweepSpec("caches", base={"length": 1000},
    ...                  grid={"ratio": [0.4, 0.5], "ways": [4, 8]})
    >>> len(spec.expand())
    4
    """

    study: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.study:
            raise ValueError("study name must be non-empty")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"grid axis {axis!r} must be a non-empty sequence"
                )

    @property
    def size(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def axis_names(self) -> List[str]:
        return list(self.grid)

    def iter_points(self) -> Iterator[ExperimentPoint]:
        axes = list(self.grid.items())
        names = [name for name, __ in axes]
        for combo in itertools.product(*(vals for __, vals in axes)):
            params = dict(self.base)
            params.update(zip(names, combo))
            yield ExperimentPoint.from_dict(self.study, params)

    def expand(self) -> List[ExperimentPoint]:
        """Cartesian-product expansion in deterministic axis order."""
        return list(self.iter_points())

    def payload(self) -> Dict[str, Any]:
        """JSON-ready identity of this spec.

        This exact shape is what gets hashed into manifests and fabric
        journals (:func:`repro.obs.provenance.spec_hash`), so a resumed
        run can prove it is replaying the same sweep.
        """
        return {
            "study": self.study,
            "base": {k: _normalise(v) for k, v in self.base.items()},
            "grid": {axis: [_normalise(v) for v in values]
                     for axis, values in self.grid.items()},
            "size": self.size,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`payload` (modulo the derived ``size``)."""
        return cls(
            study=payload["study"],
            base=dict(payload.get("base", {})),
            grid={axis: list(values)
                  for axis, values in payload.get("grid", {}).items()},
        )


def coerce_scalar(text: str) -> Any:
    """Parse a CLI grid value: int, then float, then bool, else str."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def parse_grid_option(option: str) -> Tuple[str, List[Any]]:
    """Parse one ``--grid key=v1,v2,...`` CLI occurrence."""
    key, sep, raw = option.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(
            f"malformed grid option {option!r}; expected key=v1,v2"
        )
    values = [coerce_scalar(v.strip()) for v in raw.split(",")
              if v.strip() != ""]
    if not values:
        raise ValueError(f"grid option {option!r} lists no values")
    return key, values
