"""repro — reproduction of "Penelope: The NBTI-Aware Processor" (MICRO 2007).

Layered structure:

- :mod:`repro.nbti` — NBTI device physics and guardband calibration.
- :mod:`repro.circuits` — gate-level circuits and the Ladner-Fischer
  adder with per-PMOS stress accounting.
- :mod:`repro.uarch` — the trace-driven core model (register files,
  scheduler, caches, TLB, MOB, issue ports).
- :mod:`repro.workloads` — synthetic Table 1 workload generators.
- :mod:`repro.core` — the Penelope mechanisms and the NBTIefficiency
  metric (the paper's contribution).
- :mod:`repro.experiments` — declarative sweeps, parallel execution
  and the cached result store (the run-coordination layer).
- :mod:`repro.metrics` — the unified telemetry API: typed stat trees
  (:class:`~repro.metrics.stats.MetricSet`, the ``MetricSource``
  protocol) and bounded-memory interval snapshots.
- :mod:`repro.config` — typed, JSON-serialisable specs
  (:class:`~repro.config.specs.ProcessorSpec`, ``ProtectionSpec``,
  ``WorkloadSpec``, ``StudySpec``) and the string-keyed mechanism
  registries.
- :mod:`repro.api` — the facade building everything from those specs
  (``build_core``, ``build_penelope``, ``run_study``).
- :mod:`repro.analysis` — aggregation and report formatting.

Quick start::

    from repro import api
    from repro.config import WorkloadSpec
    from repro.workloads import suite_names

    workload = api.build_workload(WorkloadSpec(
        suites=tuple(suite_names()), length=5000))  # all Table 1 suites
    report = api.build_penelope().evaluate(workload)
    print(report.efficiency, "vs baseline", report.baseline_efficiency)
"""

__version__ = "1.8.0"

__all__ = ["__version__"]
