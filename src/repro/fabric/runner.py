"""Fabric scheduler: journaled, lease-driven sweep execution.

Where :class:`~repro.experiments.runner.SweepRunner` hands points to an
anonymous pool and loses everything a killed worker was holding, the
fabric plans a run *durably* and executes it through leases:

1. **Plan** — expand + bind the spec (same code path as the in-process
   runner, so the key set is identical), drop points already in the
   sharded store, chunk the rest into hash-range batches, and write an
   atomic journal (``journal-<run_id>.json``).
2. **Execute** — workers (in-process for ``workers=1``, otherwise
   ``multiprocessing.Process`` fleets sharing only the store directory)
   loop: lease a batch, execute its points with per-point timeout and
   bounded retries, append results to the shards, heartbeat, complete.
   A worker that dies mid-batch simply stops heartbeating: its lease
   expires and a sibling steals the batch (``lease_stolen`` event).
3. **Resume** — ``FabricRunner.resume(run_id)`` reloads the journal,
   verifies the spec hash, and re-drives only batches the lease board
   has not marked done; points the dead run already stored come back as
   cache hits, so a killed-and-resumed sweep is bit-identical to an
   uninterrupted one (differential-tested).

Every durable write follows the fabric discipline (``O_APPEND`` single
write or temp+rename — lint rule FAB001); the event trail
(``lease_stolen`` / ``point_retry`` / ``worker_lost`` / ``batch_*``)
flows through the PR 6 :class:`~repro.obs.log.EventLog`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.runner import (
    EVENTS_NAME,
    PointExecutionError,
    PointResult,
    SweepResult,
    bind_spec_points,
    execute_point,
)
from repro.experiments.spec import ExperimentPoint, SweepSpec
from repro.fabric.journal import (
    SweepJournal,
    journal_path,
    load_journal,
    plan_batches,
)
from repro.fabric.lease import LEASES_NAME, LeaseBoard
from repro.fabric.store import ShardedResultStore
from repro.obs.log import EventLog, new_run_id
from repro.obs.provenance import (
    build_manifest,
    manifest_path_for,
    spec_hash,
    write_manifest,
)

__all__ = [
    "FabricConfig",
    "FabricIncompleteError",
    "FabricRunner",
    "FAULT_ENV",
]

#: Env-var fault hook: set to ``kill-worker`` to make exactly one
#: spawned fabric worker SIGKILL itself after its first stored point —
#: the CI resume-smoke (and the crash/resume tests) use this to produce
#: a deterministic mid-batch death without racing on pids.
FAULT_ENV = "REPRO_FABRIC_FAULT"
FAULT_MARKER = ".fault-fired"


class FabricIncompleteError(RuntimeError):
    """A fabric run stopped with work remaining (resume to continue)."""

    def __init__(self, message: str, run_id: str,
                 counts: Optional[Dict[str, int]] = None,
                 failed: Optional[List[Dict[str, str]]] = None) -> None:
        super().__init__(message)
        self.run_id = run_id
        self.counts = dict(counts or {})
        self.failed = list(failed or [])


@dataclass(frozen=True)
class FabricConfig:
    """Picklable knobs shipped to every worker."""

    lease_ttl: float = 5.0
    max_batch_attempts: int = 3
    point_timeout: Optional[float] = None
    point_retries: int = 1
    poll_interval: float = 0.05
    log_level: str = "info"


class _PointTimeout(Exception):
    pass


@contextmanager
def _alarm(seconds: Optional[float]):
    """Raise ``_PointTimeout`` after ``seconds`` of wall clock.

    SIGALRM-based, so it only arms in a main thread on POSIX; elsewhere
    the timeout is advisory (unenforced) rather than wrong.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _handler(signum, frame):
        raise _PointTimeout()

    old = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _maybe_fault(directory: str, allow_fault: bool) -> None:
    """Honour the env-var fault hook (test/CI worker-kill injection).

    The marker file is claimed with ``O_CREAT | O_EXCL`` so exactly one
    worker dies per store directory no matter how many race, and a
    resumed run (marker already present) proceeds unharmed.
    """
    if not allow_fault or os.environ.get(FAULT_ENV) != "kill-worker":
        return
    marker = os.path.join(directory, FAULT_MARKER)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _drain_board(
    store: ShardedResultStore,
    journal: SweepJournal,
    board: LeaseBoard,
    log: Optional[EventLog],
    cfg: FabricConfig,
    worker_tag: str,
    allow_fault: bool = False,
    stop: Optional[threading.Event] = None,
) -> None:
    """Lease/execute loop — the body of every fabric worker.

    Returns when the board has nothing left that can make progress
    (all done, or all remaining attempts exhausted), or — for
    in-process drains — when ``stop`` is set (graceful drain: the
    current batch is never abandoned mid-lease, the loop just stops
    acquiring new ones).
    """
    run_id = journal.run_id
    batch_by_id = {b.batch_id: b for b in journal.batches}
    while True:
        if stop is not None and stop.is_set():
            return
        lease = board.acquire(run_id, worker_tag, cfg.lease_ttl,
                              cfg.max_batch_attempts)
        if lease is None:
            if board.remaining(run_id, cfg.max_batch_attempts) == 0:
                return
            # Someone else holds a live lease; wake up around the time
            # it could expire so a death is noticed promptly.
            time.sleep(min(0.2, max(cfg.lease_ttl / 4.0, 0.01)))
            continue
        batch = batch_by_id[lease.batch_id]
        if log is not None:
            if lease.stolen:
                log.warning(
                    "lease_stolen", batch=batch.batch_id,
                    owner=worker_tag, prev_owner=lease.prev_owner,
                    attempts=lease.attempts, points=len(batch),
                )
            log.info("batch_leased", batch=batch.batch_id,
                     owner=worker_tag, attempts=lease.attempts,
                     points=len(batch), deadline=lease.deadline)
        try:
            first_point = True
            for key, params in zip(batch.keys, batch.params):
                existing = store.get(key)
                if existing is not None:
                    # A stolen batch may be half done — the dead owner
                    # already appended (and the parent indexed) some of
                    # its points.  Skip them: resume re-executes only
                    # what is genuinely missing.
                    if log is not None:
                        log.debug("point_skipped", key=key,
                                  batch=batch.batch_id,
                                  owner=worker_tag)
                    continue
                if lease.attempts > 1 and log is not None:
                    log.warning(
                        "point_retry", key=key, batch=batch.batch_id,
                        attempt=lease.attempts, owner=worker_tag,
                        reason="lease re-run",
                    )
                point = ExperimentPoint.from_dict(journal.study,
                                                  dict(params))
                metric_set, elapsed = _execute_with_retry(
                    point, cfg, log, batch.batch_id, worker_tag)
                store.put(point, metric_set.flatten(), elapsed)
                board.heartbeat(run_id, batch.batch_id, worker_tag,
                                cfg.lease_ttl)
                if log is not None:
                    log.info("point_done", key=key, cached=False,
                             elapsed=elapsed, batch=batch.batch_id,
                             worker=os.getpid())
                if first_point:
                    first_point = False
                    _maybe_fault(store.directory, allow_fault)
            board.complete(run_id, batch.batch_id, worker_tag)
            if log is not None:
                log.info("batch_done", batch=batch.batch_id,
                         owner=worker_tag, attempts=lease.attempts)
        except Exception as exc:
            board.fail(run_id, batch.batch_id, worker_tag,
                       f"{type(exc).__name__}: {exc}")
            if log is not None:
                log.error("batch_failed", batch=batch.batch_id,
                          owner=worker_tag, attempts=lease.attempts,
                          error=f"{type(exc).__name__}: {exc}")
            # Keep draining other batches; the failed one is either
            # retried (attempts left) or reported exhausted by the
            # parent once the board drains.


def _execute_with_retry(
    point: ExperimentPoint,
    cfg: FabricConfig,
    log: Optional[EventLog],
    batch_id: str,
    worker_tag: str,
) -> Tuple[Any, float]:
    """One point with per-point timeout and bounded in-lease retries."""
    attempt = 0
    while True:
        try:
            with _alarm(cfg.point_timeout):
                __, metric_set, elapsed = execute_point(point)
            return metric_set, elapsed
        except (_PointTimeout, PointExecutionError) as exc:
            attempt += 1
            # The alarm usually fires *inside* execute_point, which
            # wraps every study exception — look through to the cause
            # so timeouts are classified (and messaged) as timeouts.
            timed_out = (isinstance(exc, _PointTimeout)
                         or isinstance(exc.__cause__, _PointTimeout))
            reason = "timeout" if timed_out else "error"
            if attempt > cfg.point_retries:
                if log is not None:
                    log.error("point_error", key=point.key,
                              batch=batch_id, owner=worker_tag,
                              reason=reason, attempts=attempt,
                              error=str(exc))
                if timed_out:
                    raise PointExecutionError(
                        f"point {point.key} timed out after "
                        f"{cfg.point_timeout}s x{attempt} attempts",
                        key=point.key, study=point.study,
                        params=point.as_dict(),
                    ) from exc
                raise
            if log is not None:
                log.warning("point_retry", key=point.key,
                            batch=batch_id, attempt=attempt,
                            owner=worker_tag, reason=reason,
                            error=str(exc))


def _fabric_worker_main(
    directory: str,
    shards: int,
    run_id: str,
    worker_tag: str,
    cfg: FabricConfig,
    log_path: Optional[str],
) -> None:
    """Entry point of a spawned fabric worker process.

    Opens its *own* store handle (append-only: the parent is the sole
    index writer), lease board and event log — the only thing shared
    with the parent is the store directory, which is exactly the
    contract that later lets workers live on other hosts.
    """
    store = ShardedResultStore(directory, shards=shards,
                               index_writes=False,
                               refresh_on_open=False)
    board = LeaseBoard(os.path.join(directory, LEASES_NAME))
    journal = load_journal(directory, run_id)
    log = None
    if log_path is not None:
        log = EventLog(path=log_path, run_id=run_id,
                       level=cfg.log_level)
    try:
        _drain_board(store, journal, board, log, cfg, worker_tag,
                     allow_fault=True)
    finally:
        board.close()
        store.close()


class FabricRunner:
    """Journaled, resumable sweep execution over a sharded store.

    Parameters
    ----------
    store:
        A :class:`~repro.fabric.store.ShardedResultStore` (or a
        directory path, opened as one).  Journal, lease board, event
        log and manifest all live in its directory.
    workers:
        Worker count. ``1`` drains the board in-process;  more spawns
        ``multiprocessing.Process`` workers.  ``spawn_workers=True``
        forces processes even for one worker (what the CLI uses, so a
        fabric sweep always survives the death of any single worker
        process).
    batch_size:
        Points per lease batch; default sizes the plan to about four
        batches per worker (steal granularity without lease churn).
    lease_ttl / max_batch_attempts / point_timeout / point_retries:
        Lease state-machine knobs (see :mod:`repro.fabric.lease`).
    """

    def __init__(
        self,
        store: Any,
        workers: int = 1,
        batch_size: Optional[int] = None,
        lease_ttl: float = 5.0,
        max_batch_attempts: int = 3,
        point_timeout: Optional[float] = None,
        point_retries: int = 1,
        log: Optional[EventLog] = None,
        run_id: Optional[str] = None,
        manifest: bool = True,
        progress: Optional[Any] = None,
        spawn_workers: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(store, str):
            store = ShardedResultStore(store)
        self.store = store
        self.workers = workers
        self.batch_size = batch_size
        self.cfg = FabricConfig(
            lease_ttl=lease_ttl,
            max_batch_attempts=max_batch_attempts,
            point_timeout=point_timeout,
            point_retries=point_retries,
            log_level=(log.level if log is not None else "info"),
        )
        self.manifest = manifest
        self.progress = progress
        self.run_id = run_id or new_run_id()
        self.spawn_workers = (workers > 1 if spawn_workers is None
                              else spawn_workers)
        self._events_path = os.path.join(store.directory, EVENTS_NAME)
        if log is None:
            log = EventLog(path=self._events_path, run_id=self.run_id)
        else:
            log.run_id = self.run_id
        self.log = log
        self.board = LeaseBoard(
            os.path.join(store.directory, LEASES_NAME))
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask a running drive to stop early (graceful drain).

        Thread-safe and idempotent.  Spawned workers are terminated at
        the next poll tick; an in-process drain stops acquiring new
        lease batches.  The journal and lease board stay on disk, so
        the interrupted run raises :class:`FabricIncompleteError` and
        ``repro sweep --resume <run_id>`` finishes it bit-identically —
        this is what the sweep service calls on SIGTERM.
        """
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Plan, journal and execute a fresh fabric run."""
        points = bind_spec_points(spec)
        cached_keys = {
            p.key for p in points if self.store.get(p.key) is not None
        }
        seen: Dict[str, bool] = {}
        pending: List[Tuple[str, Dict[str, Any]]] = []
        for point in points:
            if point.key in cached_keys or point.key in seen:
                continue
            seen[point.key] = True
            pending.append((point.key, point.as_dict()))
        batch_size = self.batch_size or _auto_batch_size(
            len(pending), self.workers)
        payload = spec.payload()
        journal = SweepJournal(
            run_id=self.run_id,
            study=spec.study,
            spec_payload=payload,
            spec_hash=spec_hash(payload),
            store_dir=self.store.directory,
            batches=plan_batches(pending, batch_size),
            cached=len(cached_keys),
            workers=self.workers,
            batch_size=batch_size,
            created=time.time(),
        )
        journal.save()
        return self._drive(spec, journal, resumed=False)

    def resume(self, run_id: str,
               spec: Optional[SweepSpec] = None) -> SweepResult:
        """Re-drive an interrupted run from its journal.

        Verifies the journal's spec hash (and, when a spec is supplied,
        that it hashes to the same identity) before touching anything:
        resuming the wrong journal would poison the store with points
        labelled under another run's provenance.
        """
        journal = load_journal(self.store.directory, run_id)
        if spec is not None:
            supplied = spec_hash(spec.payload())
            if supplied != journal.spec_hash:
                raise ValueError(
                    f"spec hash mismatch: run {run_id} was planned for "
                    f"{journal.spec_hash}, supplied spec hashes to "
                    f"{supplied}"
                )
        else:
            spec = journal.spec()
        self.run_id = run_id
        self.log.run_id = run_id
        self.log.info("run_resumed", study=journal.study,
                      batches=len(journal.batches),
                      done=len(self.board.done_batches(run_id)),
                      workers=self.workers)
        return self._drive(spec, journal, resumed=True)

    # ------------------------------------------------------------------
    def _drive(self, spec: SweepSpec, journal: SweepJournal,
               resumed: bool) -> SweepResult:
        started = time.perf_counter()
        started_wall = time.time()
        run_id = journal.run_id
        # Cached == everything already in the store as of *this* drive:
        # on resume that includes points the killed run stored.
        points = bind_spec_points(spec)
        precached = {
            p.key for p in points if self.store.get(p.key) is not None
        }
        self.board.register(run_id,
                            [b.batch_id for b in journal.batches])
        open_batches = [
            b for b in journal.batches
            if b.batch_id not in set(self.board.done_batches(run_id))
        ]
        self.log.info(
            "run_start", study=spec.study, points=len(points),
            cached=len(precached), batches=len(journal.batches),
            open_batches=len(open_batches), workers=self.workers,
            fabric=True, resumed=resumed,
        )
        if open_batches:
            self._execute(journal)
        self.store.refresh()
        exhausted = self.board.exhausted(run_id,
                                         self.cfg.max_batch_attempts)
        remaining = self.board.remaining(run_id,
                                         self.cfg.max_batch_attempts)
        if exhausted or remaining:
            raise FabricIncompleteError(
                f"fabric run {run_id} incomplete: "
                f"{remaining} batch(es) unfinished, "
                f"{len(exhausted)} exhausted "
                f"{[e['batch'] for e in exhausted]}; resume with "
                f"`repro sweep --resume {run_id}`",
                run_id=run_id, counts=self.board.counts(run_id),
                failed=exhausted,
            )
        results = self._assemble(points, precached)
        outcome = SweepResult(
            spec=spec, results=results,
            wall_time=time.perf_counter() - started,
            run_id=run_id,
        )
        outcome.manifest_path = self._write_manifest(
            spec, journal, outcome, started_wall, resumed)
        self.log.info("run_end", study=spec.study, points=len(outcome),
                      cache_hits=outcome.cache_hits,
                      executed=outcome.executed,
                      wall_time=outcome.wall_time, fabric=True)
        return outcome

    def _execute(self, journal: SweepJournal) -> None:
        if not self.spawn_workers:
            worker_tag = f"{journal.run_id}-inproc"
            _drain_board(self.store, journal, self.board, self.log,
                         self.cfg, worker_tag, allow_fault=False,
                         stop=self._stop)
            return
        procs: List[multiprocessing.Process] = []
        count = min(self.workers, max(1, len(journal.batches)))
        try:
            for i in range(count):
                proc = multiprocessing.Process(
                    target=_fabric_worker_main,
                    args=(self.store.directory, self.store.shards,
                          journal.run_id, f"{journal.run_id}-w{i}",
                          self.cfg, self._events_path),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
        except (OSError, ImportError, PermissionError):
            # Platform can't start processes (sandbox): drain the board
            # in-process rather than failing the sweep.
            for proc in procs:
                proc.join()
            _drain_board(self.store, journal, self.board, self.log,
                         self.cfg, f"{journal.run_id}-inproc",
                         allow_fault=False, stop=self._stop)
            return
        reported: Dict[int, bool] = {}
        run_id = journal.run_id
        try:
            while True:
                remaining = self.board.remaining(
                    run_id, self.cfg.max_batch_attempts)
                alive = [p for p in procs if p.is_alive()]
                self._report_lost(procs, reported, run_id)
                if remaining == 0:
                    break
                if self._stop.is_set():
                    self.log.warning(
                        "run_draining", run_id=run_id,
                        remaining=remaining, workers=len(alive))
                    for proc in alive:
                        proc.terminate()
                    break
                if not alive:
                    raise FabricIncompleteError(
                        f"fabric run {run_id}: every worker exited "
                        f"with {remaining} batch(es) unfinished; "
                        f"resume with `repro sweep --resume {run_id}`",
                        run_id=run_id,
                        counts=self.board.counts(run_id),
                    )
                time.sleep(0.05)
        finally:
            for proc in procs:
                proc.join(timeout=max(5.0, self.cfg.lease_ttl * 2))
            self._report_lost(procs, reported, run_id)

    def _report_lost(self, procs: List[multiprocessing.Process],
                     reported: Dict[int, bool], run_id: str) -> None:
        for proc in procs:
            pid = proc.pid or 0
            if proc.is_alive() or pid in reported:
                continue
            reported[pid] = True
            if proc.exitcode not in (0, None):
                self.log.error(
                    "worker_lost", run_id=run_id, worker=pid,
                    exitcode=proc.exitcode,
                    last_heartbeat=self.board.last_heartbeat(run_id),
                )

    # ------------------------------------------------------------------
    def _assemble(self, points: List[ExperimentPoint],
                  precached: set) -> List[PointResult]:
        results: List[PointResult] = []
        first_seen: Dict[str, bool] = {}
        for point in points:
            record = self.store.get(point.key)
            if record is None:
                raise FabricIncompleteError(
                    f"point {point.key} missing from store after a "
                    f"complete run (shard corruption?)",
                    run_id=self.run_id,
                )
            cached = point.key in precached or point.key in first_seen
            first_seen[point.key] = True
            result = PointResult(
                point=point, metrics=dict(record.metrics),
                cached=cached, elapsed=record.elapsed,
            )
            results.append(result)
            if self.progress is not None:
                self.progress(result)
        return results

    def _write_manifest(self, spec: SweepSpec, journal: SweepJournal,
                        outcome: SweepResult, started_wall: float,
                        resumed: bool) -> Optional[str]:
        if not self.manifest:
            return None
        manifest = build_manifest(
            run_id=self.run_id,
            spec_payload=spec.payload(),
            points=[{
                "key": r.point.key,
                "params": r.point.as_dict(),
                "cached": r.cached,
                "elapsed": r.elapsed,
            } for r in outcome.results],
            workers=self.workers,
            started=started_wall,
            finished=time.time(),
            store_path=self.store.path,
            events_path=self._events_path,
            fabric={
                "journal": journal_path(self.store.directory,
                                        self.run_id),
                "batches": len(journal.batches),
                "batch_size": journal.batch_size,
                "lease_ttl": self.cfg.lease_ttl,
                "max_batch_attempts": self.cfg.max_batch_attempts,
                "counts": self.board.counts(self.run_id),
                "resumed": resumed,
            },
            resumed_from=self.run_id if resumed else None,
        )
        path = manifest_path_for(self.store.path)
        try:
            write_manifest(path, manifest)
        except OSError as exc:
            self.log.warning("manifest_error", path=path,
                             error=str(exc))
            return None
        return path

    def close(self) -> None:
        self.board.close()


def _auto_batch_size(pending: int, workers: int) -> int:
    """About four lease batches per worker, clamped to [1, 64]."""
    if pending == 0:
        return 1
    return max(1, min(64, math.ceil(pending / max(workers * 4, 1))))
