"""The ten benchmark-suite profiles of Table 1.

Each :class:`SuiteProfile` captures the knobs that differentiate the
paper's suites for the structures under study: uop mix (how many adder
ops, loads, FP ops), operand-value style, working-set size (the Table 3
lever), branch behaviour and dependency locality.

The trace counts mirror Table 1 of the paper (531 in total); the default
study scale uses a proportional subsample, see
:func:`repro.workloads.generator.generate_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Table 1 of the paper: suite -> number of traces.
TABLE1_TRACE_COUNTS: Dict[str, int] = {
    "encoder": 62,
    "specfp2000": 41,
    "specint2000": 33,
    "kernels": 53,
    "multimedia": 85,
    "office": 75,
    "productivity": 45,
    "server": 55,
    "workstation": 49,
    "spec2006": 33,
}


@dataclass(frozen=True)
class SuiteProfile:
    """Statistical fingerprint of one benchmark suite."""

    name: str
    description: str
    #: Fractions of (alu, mul, fp, load, store, branch, nop); must sum ~1.
    uop_mix: Tuple[float, float, float, float, float, float, float]
    #: Fraction of ALU adds that are subtract-style (carry-in = 1).
    sub_fraction: float = 0.08
    #: Bytes of hot data (drives DL0/DTLB pressure).
    working_set_bytes: int = 16 * 1024
    #: Fraction of accesses hitting the hot working set.
    hot_fraction: float = 0.92
    #: Number of hot regions.
    regions: int = 4
    #: Branch taken rate.
    taken_rate: float = 0.6
    #: Fraction of branches the frontend mispredicts (drives pipeline
    #: drains, and with them realistic scheduler occupancy).
    mispredict_rate: float = 0.08
    #: Fraction of uops carrying an immediate.
    immediate_fraction: float = 0.35
    #: Fraction of uops with AH/BH/CH/DH sub-register shifts.
    shift_fraction: float = 0.03
    #: Dependency locality: probability a source is one of the last K dsts.
    dependency_locality: float = 0.65
    #: Integer value mixture overrides (weights for BiasedIntGenerator).
    int_value_weights: Tuple[float, float, float, float, float] = (
        0.35, 0.25, 0.15, 0.15, 0.10
    )

    def __post_init__(self) -> None:
        total = sum(self.uop_mix)
        if not 0.99 <= total <= 1.01:
            raise ValueError(
                f"suite {self.name!r}: uop mix sums to {total:.3f}, not 1"
            )
        if not 0.0 <= self.sub_fraction <= 1.0:
            raise ValueError("sub_fraction must be within [0, 1]")

    @property
    def classes(self) -> Tuple[str, ...]:
        return ("alu", "mul", "fp", "load", "store", "branch", "nop")

    def mix_dict(self) -> Dict[str, float]:
        return dict(zip(self.classes, self.uop_mix))


#                      alu   mul   fp    load  store branch nop
SUITE_PROFILES: Dict[str, SuiteProfile] = {
    "encoder": SuiteProfile(
        name="encoder",
        description="Audio/video encoding",
        uop_mix=(0.34, 0.05, 0.08, 0.24, 0.12, 0.12, 0.05),
        working_set_bytes=8 * 1024,
        hot_fraction=0.98,
        regions=6,
        taken_rate=0.55,
        sub_fraction=0.10,
        mispredict_rate=0.06,
    ),
    "specfp2000": SuiteProfile(
        name="specfp2000",
        description="Floating-point SPEC CPU2000",
        uop_mix=(0.22, 0.03, 0.26, 0.26, 0.08, 0.10, 0.05),
        working_set_bytes=12 * 1024,
        hot_fraction=0.97,
        regions=8,
        taken_rate=0.70,
        sub_fraction=0.05,
        mispredict_rate=0.04,
    ),
    "specint2000": SuiteProfile(
        name="specint2000",
        description="Integer SPEC CPU2000",
        uop_mix=(0.38, 0.04, 0.01, 0.24, 0.10, 0.18, 0.05),
        working_set_bytes=6 * 1024,
        hot_fraction=0.98,
        regions=5,
        taken_rate=0.62,
        sub_fraction=0.12,
        mispredict_rate=0.09,
    ),
    "kernels": SuiteProfile(
        name="kernels",
        description="VectorAdd, FIR filters",
        uop_mix=(0.36, 0.02, 0.12, 0.26, 0.14, 0.06, 0.04),
        working_set_bytes=2 * 1024,
        hot_fraction=0.995,
        regions=2,
        taken_rate=0.85,
        sub_fraction=0.04,
        dependency_locality=0.5,
        mispredict_rate=0.02,
    ),
    "multimedia": SuiteProfile(
        name="multimedia",
        description="WMedia, Photoshop",
        uop_mix=(0.33, 0.05, 0.10, 0.24, 0.11, 0.12, 0.05),
        working_set_bytes=8 * 1024,
        hot_fraction=0.98,
        regions=6,
        taken_rate=0.58,
        mispredict_rate=0.07,
    ),
    "office": SuiteProfile(
        name="office",
        description="Excel, Word, Powerpoint",
        uop_mix=(0.36, 0.03, 0.02, 0.25, 0.11, 0.17, 0.06),
        working_set_bytes=4 * 1024,
        hot_fraction=0.99,
        regions=4,
        taken_rate=0.60,
        sub_fraction=0.10,
        mispredict_rate=0.10,
    ),
    "productivity": SuiteProfile(
        name="productivity",
        description="Internet contents creation",
        uop_mix=(0.35, 0.03, 0.03, 0.25, 0.11, 0.17, 0.06),
        working_set_bytes=6 * 1024,
        hot_fraction=0.98,
        regions=4,
        taken_rate=0.60,
        mispredict_rate=0.09,
    ),
    "server": SuiteProfile(
        name="server",
        description="TPC-C",
        uop_mix=(0.32, 0.03, 0.01, 0.28, 0.13, 0.17, 0.06),
        working_set_bytes=24 * 1024,
        hot_fraction=0.95,
        regions=12,
        taken_rate=0.58,
        sub_fraction=0.10,
        mispredict_rate=0.12,
    ),
    "workstation": SuiteProfile(
        name="workstation",
        description="CAD, rendering",
        uop_mix=(0.28, 0.04, 0.16, 0.26, 0.10, 0.11, 0.05),
        working_set_bytes=10 * 1024,
        hot_fraction=0.97,
        regions=8,
        taken_rate=0.65,
        mispredict_rate=0.06,
    ),
    "spec2006": SuiteProfile(
        name="spec2006",
        description="SPEC CPU2006",
        uop_mix=(0.34, 0.04, 0.08, 0.26, 0.10, 0.13, 0.05),
        working_set_bytes=16 * 1024,
        hot_fraction=0.96,
        regions=10,
        taken_rate=0.63,
        sub_fraction=0.09,
        mispredict_rate=0.08,
    ),
}


def suite_names() -> List[str]:
    """Suite names in Table 1 order."""
    return list(TABLE1_TRACE_COUNTS)


def get_profile(name: str) -> SuiteProfile:
    try:
        return SUITE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(suite_names())}"
        ) from None
