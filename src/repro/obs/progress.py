"""Live sweep progress: rate / ETA rendering over point completions.

The runner reports each finished :class:`~repro.experiments.runner.
PointResult` through its ``progress`` callback; :class:`SweepProgress`
turns that stream into one of three renderings:

- ``line``  — one human line per point with running rate and ETA
  (what ``repro sweep --verbose`` shows);
- ``json``  — one JSON object per point (machine consumers tail this);
- ``none``  — silent (``--quiet`` / default non-verbose runs).

Worker *heartbeats* (which process picked up which point, and when)
travel separately through the structured event log — this module is
only the foreground rendering of completions.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, IO, Optional

MODES = ("line", "json", "none")


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


class SweepProgress:
    """Render sweep completions as progress lines or JSON events."""

    def __init__(self, total: int, mode: str = "line",
                 stream: Optional[IO[str]] = None,
                 clock=time.monotonic) -> None:
        if mode not in MODES:
            raise ValueError(
                f"unknown progress mode {mode!r}; choose from "
                f"{', '.join(MODES)}"
            )
        self.total = total
        self.mode = mode
        self.stream = stream
        self._clock = clock
        self._started = clock()
        self.done = 0
        self.cached = 0
        self.slowest: Optional[Any] = None
        self.run_id: Optional[str] = None
        self.store_path: Optional[str] = None

    # ------------------------------------------------------------------
    def begin(self, run_id: Optional[str] = None,
              store: Optional[str] = None) -> None:
        """Announce run identity *before* the first point completes.

        In ``json`` mode this emits a ``start`` event carrying the
        run_id and store path, so machine consumers (and humans) can
        attach to the event log / store mid-run instead of learning
        both only from the final summary.
        """
        self.run_id = run_id
        self.store_path = store
        if self.mode != "json":
            return
        print(json.dumps({
            "event": "start",
            "run_id": run_id,
            "store": store,
            "total": self.total,
        }, sort_keys=True), file=self.stream or sys.stdout)

    # ------------------------------------------------------------------
    def update(self, result: Any) -> None:
        """Consume one finished point (the runner's progress callback)."""
        self.done += 1
        if result.cached:
            self.cached += 1
        elif (self.slowest is None
              or result.elapsed > self.slowest.elapsed):
            self.slowest = result
        if self.mode == "none":
            return
        elapsed = max(self._clock() - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if rate > 0 else float("nan")
        if self.mode == "json":
            print(json.dumps({
                "event": "point",
                "done": self.done,
                "total": self.total,
                "key": result.point.key,
                "cached": result.cached,
                "elapsed": round(result.elapsed, 6),
                "rate_per_s": round(rate, 3),
                "eta_s": round(eta, 1) if remaining else 0.0,
            }, sort_keys=True), file=self.stream or sys.stdout)
            return
        tag = "cached" if result.cached else f"{result.elapsed:6.2f}s"
        pace = (f"{rate:5.1f}/s eta {_format_eta(eta)}" if remaining
                else f"{rate:5.1f}/s done")
        print(f"  [{self.done:3d}/{self.total}] {tag:>7}  "
              f"{result.point.describe()}  | {pace}",
              file=self.stream or sys.stdout)

    # ------------------------------------------------------------------
    def summary(self, wall_time: float) -> str:
        """End-of-run digest: totals, cache hits, slowest point."""
        parts = [
            f"{self.done} points in {wall_time:.2f}s: "
            f"{self.cached} cache hits, {self.done - self.cached} executed"
        ]
        if self.slowest is not None:
            parts.append(
                f"slowest point: {self.slowest.point.describe()} "
                f"({self.slowest.elapsed:.2f}s, "
                f"key {self.slowest.point.key[:10]})"
            )
        return "\n".join(parts)
