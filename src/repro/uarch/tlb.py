"""Data TLB model.

The DTLB is architecturally a small, page-granular cache-like structure
(Section 4.6 treats it with the same inversion mechanisms as the DL0), so
the model specialises :class:`~repro.uarch.cache.Cache` with page-sized
lines and an entry-count geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import Cache, CacheConfig

DEFAULT_PAGE_BYTES = 4096


@dataclass(frozen=True, slots=True)
class TLBConfig:
    """Geometry of a TLB in entries rather than bytes.

    Examples
    --------
    >>> TLBConfig(name="DTLB-128", entries=128, ways=8).cache_config().sets
    16
    """

    name: str
    entries: int
    ways: int = 8
    page_bytes: int = DEFAULT_PAGE_BYTES

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0 or self.page_bytes <= 0:
            raise ValueError("TLB geometry must be positive")
        if self.entries % self.ways:
            raise ValueError(
                f"{self.name}: entries {self.entries} not divisible by "
                f"ways {self.ways}"
            )

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            name=self.name,
            size_bytes=self.entries * self.page_bytes,
            ways=self.ways,
            line_bytes=self.page_bytes,
        )


class TLB(Cache):
    """A data TLB: a page-granular cache of translations."""

    __slots__ = ("tlb_config",)

    def __init__(self, config: TLBConfig) -> None:
        super().__init__(config.cache_config())
        self.tlb_config = config

    def translate(self, address: int) -> bool:
        """Look up the page of a byte address; returns hit/miss."""
        return self.access(address)
