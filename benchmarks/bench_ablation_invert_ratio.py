"""Ablation: invert-ratio sweep for line-granularity cache inversion.

The paper fixes K=50% for perfect balancing and mentions the fixed /
dynamic trade-off; this sweep quantifies the bias-vs-performance knob:
higher ratios balance bit cells harder but cost more capacity.
"""

import pytest

from repro.analysis import format_table
from repro.core.cache_like import LineFixedScheme, run_cache_study
from repro.uarch.cache import CacheConfig
from repro.workloads import generate_address_stream, suite_names

CONFIG = CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024, ways=8)
RATIOS = (0.25, 0.4, 0.5, 0.6, 0.75)


@pytest.fixture(scope="module")
def streams():
    return [
        generate_address_stream(suite, length=10_000, seed=55)
        for suite in suite_names()
    ]


def sweep(streams):
    rows = []
    losses = []
    for ratio in RATIOS:
        study = run_cache_study(
            CONFIG, lambda r=ratio: LineFixedScheme(r), streams
        )
        # Expected steady-state bias with a fraction `ratio` of the
        # cells holding inverted (complementary) contents.
        expected_bias = 0.9 * (1 - study.mean_inverted_ratio) \
            + 0.1 * study.mean_inverted_ratio
        rows.append([
            f"{ratio:.0%}",
            f"{study.mean_loss:.2%}",
            f"{study.mean_inverted_ratio:.1%}",
            f"{expected_bias:.1%}",
        ])
        losses.append(study.mean_loss)
    return rows, losses


def test_ablation_invert_ratio(benchmark, streams):
    rows, losses = benchmark.pedantic(
        sweep, args=(streams,), rounds=1, iterations=1
    )
    # More inversion can only cost more performance.
    assert losses == sorted(losses)
    text = format_table(
        ["invert ratio", "perf loss", "achieved ratio",
         "worst-cell bias (90%-biased data)"],
        rows,
        title="Ablation — invert-ratio sweep (LineFixed, DL0-16K-8w)",
    )
    from conftest import write_result

    write_result("ablation_invert_ratio.txt", text)
