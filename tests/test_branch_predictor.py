"""Tests for the bimodal branch predictor and its NBTI protection."""

import random

import pytest

from repro.uarch.branch_predictor import (
    BimodalPredictor,
    ProtectedBimodalPredictor,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)


class TestBimodalPredictor:
    def test_counter_saturation(self):
        predictor = BimodalPredictor(entries=4,
                                     initial_state=WEAK_NOT_TAKEN)
        pc = 0x40
        for __ in range(5):
            predictor.update(pc, taken=True)
        assert predictor.counter(predictor.index_of(pc)) == STRONG_TAKEN
        for __ in range(10):
            predictor.update(pc, taken=False)
        assert predictor.counter(predictor.index_of(pc)) == STRONG_NOT_TAKEN

    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(entries=64)
        rng = random.Random(0)
        for __ in range(500):
            predictor.update(0x100, taken=rng.random() < 0.9)
        assert predictor.stats.accuracy > 0.8

    def test_prediction_threshold(self):
        predictor = BimodalPredictor(entries=4,
                                     initial_state=WEAK_TAKEN)
        assert predictor.predict(0x40) is True
        predictor.update(0x40, taken=False)
        assert predictor.predict(0x40) is False

    def test_index_aliasing(self):
        predictor = BimodalPredictor(entries=4)
        assert predictor.index_of(0x0) == predictor.index_of(0x40)

    def test_bias_tracked(self):
        predictor = BimodalPredictor(entries=8)
        for i in range(200):
            predictor.update(i % 8 * 4, taken=True)
        # Saturated-taken counters (0b11): bit cells biased to one.
        assert predictor.worst_bias() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=0)
        with pytest.raises(ValueError):
            BimodalPredictor(initial_state=7)
        predictor = BimodalPredictor()
        with pytest.raises(ValueError):
            predictor.write_counter(0, 9)


class TestProtectedBimodalPredictor:
    def _workload(self, n=6000, seed=1):
        rng = random.Random(seed)
        branches = []
        for __ in range(n):
            pc = rng.choice((0x100, 0x140, 0x180, 0x1C0, 0x200))
            bias = {0x100: 0.95, 0x140: 0.9, 0x180: 0.8,
                    0x1C0: 0.7, 0x200: 0.3}[pc]
            branches.append((pc, rng.random() < bias))
        return branches

    def test_accuracy_cost_is_bounded(self):
        branches = self._workload()
        plain = BimodalPredictor(entries=256)
        protected = ProtectedBimodalPredictor(
            BimodalPredictor(entries=256), ratio=0.5,
            rotation_period=512,
        )
        for pc, taken in branches:
            plain.update(pc, taken)
            protected.update(pc, taken)
        assert plain.stats.accuracy > 0.75
        # Half the table is sacrificed; mostly-taken branches still
        # predict via the static fallback, so the loss stays modest.
        assert protected.stats.accuracy > plain.stats.accuracy - 0.15

    def test_inversion_improves_balance(self):
        branches = self._workload()
        plain = BimodalPredictor(entries=64)
        protected = ProtectedBimodalPredictor(
            BimodalPredictor(entries=64), ratio=0.5, rotation_period=256,
        )
        for pc, taken in branches:
            plain.update(pc, taken)
            protected.update(pc, taken)
        assert protected.worst_bias() <= plain.worst_bias() + 1e-9

    def test_inverted_entries_fall_back_statically(self):
        predictor = BimodalPredictor(entries=4)
        protected = ProtectedBimodalPredictor(predictor, ratio=0.5,
                                              rotation_period=10_000)
        # Entry 0 starts inverted: prediction is the static "taken".
        assert protected.predict(0x0) is True

    def test_rotation_cycles_window(self):
        predictor = BimodalPredictor(entries=8)
        protected = ProtectedBimodalPredictor(predictor, ratio=0.25,
                                              rotation_period=4)
        first_before = protected._first
        for i in range(16):
            protected.update(i * 4, True)
        assert protected._first != first_before

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtectedBimodalPredictor(ratio=1.0)
        with pytest.raises(ValueError):
            ProtectedBimodalPredictor(rotation_period=0)
