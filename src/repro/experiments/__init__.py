"""Experiment orchestration: declarative sweeps, parallel execution,
and a cached result store.

The paper evaluates Penelope over 531 traces and dozens of design-point
sweeps.  This subsystem replaces the hand-rolled serial loops that used
to live in ``cli.py``, ``benchmarks/bench_ablation_*.py`` and
``examples/*_study.py`` with one engine:

- :mod:`repro.experiments.spec` — :class:`SweepSpec` declares a study
  name, base parameters, and grid axes; :meth:`SweepSpec.expand` takes
  the cartesian product into :class:`ExperimentPoint` objects, each
  with a stable content hash (``point.key``).
- :mod:`repro.experiments.registry` — named studies (``caches``,
  ``regfile``, ``penelope``, ``invert_ratio``, ``vmin_power``,
  ``victim_policy``, ``multiprog``) map a point's parameters onto the
  existing entry points (``TraceDrivenCore``, ``run_cache_study``,
  ``PenelopeProcessor``) and return typed
  :class:`~repro.metrics.stats.MetricSet` trees whose ``flatten()`` is
  the legacy flat metric dict (bit-identical — store rows and point
  hashes are unchanged).  Workloads are memoised per worker so points
  sharing a trace only generate it once.
- :mod:`repro.experiments.runner` — :class:`SweepRunner` consults the
  store, then fans cache misses out over ``multiprocessing`` workers
  (serial for ``workers=1``); results return in spec order, so
  parallel and serial sweeps are bit-identical.
- :mod:`repro.experiments.store` — :class:`ResultStore`, an
  append-only JSONL cache under ``benchmarks/results/`` keyed by point
  hash; rerunning an unchanged sweep is pure cache hits.
- :mod:`repro.experiments.summary` — group-by/mean-min-max reduction
  feeding :func:`repro.analysis.format_table`.

Quick start::

    from repro.experiments import (
        ResultStore, SweepRunner, SweepSpec, format_summary,
    )

    spec = SweepSpec(
        "caches",
        base={"length": 6000, "seed": 0},
        grid={"ratio": [0.4, 0.5, 0.6], "ways": [4, 8],
              "suite": ["specint2000", "office"]},
    )
    outcome = SweepRunner(store=ResultStore(), workers=4).run(spec)
    print(format_summary(outcome.results, group_by=["ratio", "ways"],
                         metrics=["mean_loss", "inverted_ratio"]))

or from the shell::

    repro sweep caches --grid ratio=0.4,0.5,0.6 --grid ways=4,8 \\
        --workers 4
    repro results --study caches

Studies can equivalently be driven from a declarative, serialisable
:class:`~repro.config.specs.StudySpec` whose sweep axes are spec field
paths — each study's ``spec_paths`` binding maps them onto the flat
parameters above, so both spellings share point hashes and the result
store (see :func:`repro.api.run_study` and ``repro run --config``).
"""

from repro.experiments.registry import (
    StudyDefinition,
    get_study,
    register_study,
    study_names,
)
from repro.experiments.runner import (
    PointExecutionError,
    PointResult,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.experiments.spec import (
    ExperimentPoint,
    SweepSpec,
    coerce_scalar,
    parse_grid_option,
    point_key,
)
from repro.experiments.store import (
    ResultStore,
    StoredResult,
    default_store_path,
)
from repro.experiments.summary import (
    MIXED,
    aggregate_metric,
    format_summary,
    group_results,
    metric_names,
    summarize,
)

__all__ = [
    "MIXED",
    "StudyDefinition",
    "get_study",
    "register_study",
    "study_names",
    "PointExecutionError",
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
    "ExperimentPoint",
    "SweepSpec",
    "coerce_scalar",
    "parse_grid_option",
    "point_key",
    "ResultStore",
    "StoredResult",
    "default_store_path",
    "aggregate_metric",
    "format_summary",
    "group_results",
    "metric_names",
    "summarize",
]
