"""Reservation-station scheduler with the Table 2 field layout.

Each of the (by default 32) scheduler slots stores one uop as the field
bundle of Table 2 of the paper.  Internally a slot is one flattened
144-bit row of a single :class:`~repro.uarch.bitbias.BitBiasAccumulator`
(per-field accumulators would cost ~18x more numpy round-trips per
dispatch); field views are recovered by slicing with the layout offsets.
Conceptually each field still behaves as "an independent structure"
(Section 3.2.2): mechanisms address fields by name and the statistics
report per-field bias.

Baseline semantics: a released slot keeps its stale payload and only the
``valid`` bit drops to 0 — which is why flags/shift/latency bits show
near-100% bias in Figure 8 (baseline) and why the valid bit itself cannot
be protected.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    np = None  # type: ignore[assignment]

from repro.metrics import MetricSet
from repro.uarch.bitbias import BitBiasAccumulator
from repro.uarch.uop import SCHEDULER_LAYOUT, SchedulerLayout, Uop


@dataclass(frozen=True)
class SchedulerStats:
    """End-of-run statistics of the scheduler."""

    entries: int
    layout: SchedulerLayout
    allocations: int
    occupancy: float
    port_free_fraction: float
    field_bias: Dict[str, "np.ndarray"]
    special_writes: int
    discarded_special_writes: int

    def flattened_bias(self, include_opcode: bool = False):
        """Per-bit bias in Table 2 order (Figure 8's X axis).

        Figure 8 omits the opcode bits ("they depend strongly on the
        implementation"); pass ``include_opcode=True`` to keep them.
        Returns a float64 array, or a list without numpy.
        """
        parts = []
        for name in self.layout.fields():
            if name == "opcode" and not include_opcode:
                continue
            parts.append(self.field_bias[name])
        if np is None:
            return [b for part in parts for b in part]
        return np.concatenate(parts)

    def worst_bias(self, include_opcode: bool = False) -> float:
        bias = self.flattened_bias(include_opcode)
        return float(max(max(b, 1.0 - b) for b in bias))

    def worst_field(self) -> Tuple[str, float]:
        """(field, worst bias) of the most imbalanced protected field."""
        worst_name, worst_value = "", 0.0
        for name, bias in self.field_bias.items():
            imbalance = float(max(max(b, 1.0 - b) for b in bias))
            if imbalance > worst_value:
                worst_name, worst_value = name, imbalance
        return worst_name, worst_value


class Scheduler:
    """The scheduler structure (explicitly managed, short idle time)."""

    def __init__(
        self,
        entries: int = 32,
        layout: SchedulerLayout = SCHEDULER_LAYOUT,
        alloc_ports: int = 4,
        name: str = "scheduler",
    ) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if alloc_ports <= 0:
            raise ValueError("alloc_ports must be positive")
        self.name = name
        self.entries = entries
        self.layout = layout
        self.alloc_ports = alloc_ports
        self._offsets = layout.bit_offsets()
        self.bias = BitBiasAccumulator(entries, layout.total_bits)
        self._init_run_state()

    def _init_run_state(self) -> None:
        entries = self.entries
        self._slot_value: List[int] = [0] * entries
        self._free: List[Tuple[float, int, int]] = [
            (0.0, i, i) for i in range(entries)
        ]
        heapq.heapify(self._free)
        self._counter = entries
        self._busy = [False] * entries
        self._busy_since = [0.0] * entries
        self._busy_time = 0.0
        self._allocations = 0
        self._special_writes = 0
        self._discarded_special = 0
        self._port_use: Dict[int, int] = {}
        self._port_checks = 0
        self._port_free_hits = 0
        self._horizon = 0.0

    def reset(self) -> None:
        """Restore the freshly-constructed state (reusable across runs)."""
        self.bias.reset()
        self._init_run_state()

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def allocate(self, now: float) -> Optional[int]:
        """Take a slot free at time ``now`` (None when none is)."""
        if not self._free or self._free[0][0] > now:
            return None
        __, __, slot = heapq.heappop(self._free)
        self._busy[slot] = True
        self._busy_since[slot] = now
        self._allocations += 1
        self._horizon = max(self._horizon, now)
        return slot

    def next_free_time(self) -> Optional[float]:
        if not self._free:
            return None
        return self._free[0][0]

    def fill(
        self,
        slot: int,
        uop: Uop,
        mob_id: Optional[int],
        now: float,
        dst_tag: int = 0,
        src1_tag: int = 0,
        src2_tag: int = 0,
    ) -> None:
        """Write a dispatched uop's payload into a slot.

        The tag operands are *physical* register ids from rename — the
        paper relies on their even usage making the tag fields
        self-balanced (Section 4.5).
        """
        self._check_slot(slot)
        self._use_port(now)
        values = self.field_values(uop, mob_id, dst_tag, src1_tag, src2_tag)
        self._write_fields(slot, values, now)

    def set_field(self, slot: int, field: str, value: int, now: float) -> None:
        """Update one field during residency (ready bits, data capture)."""
        self._check_slot(slot)
        self._write_fields(slot, {field: value}, now)

    def release(self, slot: int, now: float) -> None:
        """Free a slot at issue; payload stays stale, valid drops to 0."""
        self._check_slot(slot)
        if not self._busy[slot]:
            raise ValueError(f"slot {slot} is not busy")
        self._write_fields(slot, {"valid": 0}, now)
        self._busy[slot] = False
        self._busy_time += now - self._busy_since[slot]
        self._counter += 1
        heapq.heappush(self._free, (now, self._counter, slot))

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def port_available(self, now: float) -> bool:
        """Whether an allocate port is idle in this cycle (77% on avg)."""
        self._port_checks += 1
        free = self._port_use.get(int(now), 0) < self.alloc_ports
        if free:
            self._port_free_hits += 1
        return free

    def write_special(
        self, slot: int, values: Mapping[str, int], now: float
    ) -> bool:
        """Mechanism write of selected fields into a *free* slot."""
        self._check_slot(slot)
        if "valid" in values:
            raise ValueError("the valid bit cannot hold repair data")
        if self._busy[slot] or not self.port_available(now):
            self._discarded_special += 1
            return False
        self._use_port(now)
        self._write_fields(slot, values, now)
        self._special_writes += 1
        return True

    def is_busy(self, slot: int) -> bool:
        self._check_slot(slot)
        return self._busy[slot]

    def field_value(self, slot: int, field: str) -> int:
        """Current value of one field of a slot."""
        self._check_slot(slot)
        start, width = self._field_span(field)
        return (self._slot_value[slot] >> start) & ((1 << width) - 1)

    # ------------------------------------------------------------------
    # Payload decoding
    # ------------------------------------------------------------------
    def field_values(
        self,
        uop: Uop,
        mob_id: Optional[int],
        dst_tag: int = 0,
        src1_tag: int = 0,
        src2_tag: int = 0,
    ) -> Dict[str, int]:
        """Table 2 payload for a dispatched uop.

        ``ready1``/``ready2`` start at 0 and are raised by
        :meth:`set_field` when operands arrive; ``src*_data`` capture the
        operand values (data-capture scheduler); the tags are physical
        register ids.  ``mob_id`` is None for non-memory uops: the field
        keeps its stale contents, so its residency reflects only the
        evenly-used MOB slot ids (the paper's self-balancing argument).
        """
        layout = self.layout
        data_mask = (1 << layout.src1_data) - 1
        values = {
            "valid": 1,
            "latency": min(uop.latency, (1 << layout.latency) - 1),
            "port": (1 << uop.port) & ((1 << layout.port) - 1),
            "taken": int(uop.taken),
            "tos": uop.tos & ((1 << layout.tos) - 1),
            "flags": uop.flags & ((1 << layout.flags) - 1),
            "shift1": int(uop.shift1),
            "shift2": int(uop.shift2),
            "dst_tag": dst_tag & ((1 << layout.dst_tag) - 1),
            "src1_tag": src1_tag & ((1 << layout.src1_tag) - 1),
            "src2_tag": src2_tag & ((1 << layout.src2_tag) - 1),
            "ready1": 0,
            "ready2": 0,
            "src1_data": uop.src1_value & data_mask,
            "src2_data": uop.src2_value & data_mask,
            "immediate": uop.immediate & ((1 << layout.immediate) - 1),
            "opcode": uop.opcode & ((1 << layout.opcode) - 1),
        }
        if mob_id is not None:
            values["mob_id"] = mob_id & ((1 << layout.mob_id) - 1)
        return values

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def finalize(self, now: Optional[float] = None) -> SchedulerStats:
        end = max(now if now is not None else 0.0, self._horizon)
        for slot in range(self.entries):
            if self._busy[slot]:
                self._busy_time += end - self._busy_since[slot]
                self._busy_since[slot] = end
        self.bias.finalize(end)
        total_time = end * self.entries
        occupancy = self._busy_time / total_time if total_time > 0.0 else 0.0
        port_free = (
            self._port_free_hits / self._port_checks
            if self._port_checks else 1.0
        )
        flat_bias = self.bias.bias_to_zero()
        field_bias = {
            field: flat_bias[start:start + width]
            for field, (start, width) in self._offsets.items()
        }
        return SchedulerStats(
            entries=self.entries,
            layout=self.layout,
            allocations=self._allocations,
            occupancy=occupancy,
            port_free_fraction=port_free,
            field_bias=field_bias,
            special_writes=self._special_writes,
            discarded_special_writes=self._discarded_special,
        )

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """Live metric tree over the scheduler's counters.

        ``bias.worst_bias`` covers the whole 144-bit row (valid and
        opcode bits included), unlike ``SchedulerStats.worst_bias``
        which follows Figure 8 in omitting the opcode field.
        """
        ms = MetricSet()
        ms.counter("allocations", read=lambda: self._allocations)
        ms.counter("special_writes", read=lambda: self._special_writes)
        ms.counter("discarded_special_writes",
                   read=lambda: self._discarded_special)
        ms.counter("port_checks", read=lambda: self._port_checks)
        ms.counter("port_free_hits", read=lambda: self._port_free_hits)
        ms.ratio("port_free_fraction", numerator="port_free_hits",
                 denominator="port_checks", zero=1.0,
                 help="no checks yet means every port is free "
                      "(finalize()'s convention)")
        ms.child("bias", self.bias.metrics())
        return ms

    # ------------------------------------------------------------------
    def _write_fields(
        self, slot: int, values: Mapping[str, int], now: float
    ) -> None:
        composed = self._slot_value[slot]
        for field, value in values.items():
            start, width = self._field_span(field)
            mask = (1 << width) - 1
            if value < 0 or value > mask:
                raise ValueError(
                    f"value {value!r} does not fit field {field!r}"
                )
            composed = (composed & ~(mask << start)) | (value << start)
        self._slot_value[slot] = composed
        self.bias.set_value(slot, composed, now)
        self._horizon = max(self._horizon, now)

    def _field_span(self, field: str) -> Tuple[int, int]:
        try:
            return self._offsets[field]
        except KeyError:
            raise KeyError(f"unknown scheduler field {field!r}") from None

    def _use_port(self, now: float) -> None:
        cycle = int(now)
        self._port_use[cycle] = self._port_use.get(cycle, 0) + 1

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.entries:
            raise IndexError(f"slot index out of range: {slot}")
