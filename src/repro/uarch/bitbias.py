"""Interval-based per-bit-cell residency accounting.

Storage structures accrue NBTI stress according to *how long* each bit
cell holds "0" vs "1" (Section 3.2).  Accounting naively (every cell,
every cycle) is prohibitively slow; instead :class:`BitBiasAccumulator`
closes a residency interval only when a cell's value changes:

    entries x width matrices ``time_zero`` / ``time_one`` accumulate
    ``(now - since[entry]) * bit`` on each value change of ``entry``.

Values are unpacked to bit vectors with numpy, so a write costs O(width)
vectorised work instead of O(width) Python loop iterations.  When numpy
is not installed (the ``fast`` extra), a pure-Python branch keeps the
accounting available at reduced speed; the numpy path is unchanged.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    np = None  # type: ignore[assignment]

from repro.metrics import MetricSet


@lru_cache(maxsize=1 << 16)
def _unpack_small(value: int, width: int):
    """Cached unpack for the narrow fields that dominate the hot path.

    The returned array is shared across callers and must be treated as
    read-only; :class:`BitBiasAccumulator` only copy-assigns it into its
    state matrix.
    """
    if np is None:
        return tuple((value >> i) & 1 for i in range(width))
    raw = np.frombuffer(value.to_bytes((width + 7) // 8, "little"),
                        dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width]


def unpack_bits(value: int, width: int):
    """Little-endian bit vector (uint8 array, or tuple without numpy)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    nbytes = (width + 7) // 8
    if value >> (nbytes * 8):
        raise ValueError(f"value {value!r} does not fit in {width} bits")
    if width <= 16:
        return _unpack_small(value, width)
    if np is None:
        return tuple((value >> i) & 1 for i in range(width))
    raw = np.frombuffer(value.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width]


def pack_bits(bits) -> int:
    """Inverse of :func:`unpack_bits`."""
    if np is None:
        return sum(int(b) << i for i, b in enumerate(bits))
    padded = np.zeros(((bits.size + 7) // 8) * 8, dtype=np.uint8)
    padded[: bits.size] = bits
    return int.from_bytes(np.packbits(padded, bitorder="little").tobytes(),
                          "little")


class BitBiasAccumulator:
    """Residency accounting for a matrix of bit cells.

    Parameters
    ----------
    entries:
        Number of rows (structure entries).
    width:
        Number of bit cells per entry.
    initial_value:
        Value every entry holds at time zero (real silicon powers up to
        *something*; the paper's FP discussion notes the impact of the
        initial non-inverted content).
    """

    def __init__(self, entries: int, width: int, initial_value: int = 0) -> None:
        if entries <= 0 or width <= 0:
            raise ValueError("entries and width must be positive")
        self.entries = entries
        self.width = width
        self.initial_value = initial_value
        if np is None:
            row = unpack_bits(initial_value, width)
            self.time_zero = [[0.0] * width for _ in range(entries)]
            self.time_one = [[0.0] * width for _ in range(entries)]
            self._bits = [row] * entries
            self._since = [0.0] * entries
        else:
            self.time_zero = np.zeros((entries, width), dtype=np.float64)
            self.time_one = np.zeros((entries, width), dtype=np.float64)
            self._bits = np.tile(unpack_bits(initial_value, width),
                                 (entries, 1))
            self._since = np.zeros(entries, dtype=np.float64)

    def reset(self) -> None:
        """Discard all residency history and restart at time zero."""
        if np is None:
            row = unpack_bits(self.initial_value, self.width)
            self.time_zero = [[0.0] * self.width for _ in range(self.entries)]
            self.time_one = [[0.0] * self.width for _ in range(self.entries)]
            self._bits = [row] * self.entries
            self._since = [0.0] * self.entries
            return
        self.time_zero.fill(0.0)
        self.time_one.fill(0.0)
        self._bits = np.tile(unpack_bits(self.initial_value, self.width),
                             (self.entries, 1))
        self._since.fill(0.0)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_value(self, entry: int, value: int, now: float) -> None:
        """Record that ``entry`` changes to ``value`` at time ``now``."""
        self._close(entry, now)
        self._bits[entry] = unpack_bits(value, self.width)

    def current_value(self, entry: int) -> int:
        return pack_bits(self._bits[entry])

    def finalize(self, now: float) -> None:
        """Close all open intervals at time ``now`` (end of simulation)."""
        for entry in range(self.entries):
            self._close(entry, now)

    def _close(self, entry: int, now: float) -> None:
        duration = now - self._since[entry]
        if duration < 0.0:
            raise ValueError(
                f"time went backwards for entry {entry}: "
                f"{self._since[entry]} -> {now}"
            )
        if duration > 0.0:
            bits = self._bits[entry]
            if np is None:
                one = self.time_one[entry]
                zero = self.time_zero[entry]
                for i, bit in enumerate(bits):
                    if bit:
                        one[i] += duration
                    else:
                        zero[i] += duration
            else:
                self.time_one[entry] += duration * bits
                self.time_zero[entry] += duration * (1 - bits)
        self._since[entry] = now

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def bias_to_zero(self):
        """Per-bit-position bias towards "0", aggregated over entries.

        This is the quantity plotted on the Y axis of Figures 6 and 8.
        Positions never exercised report 0.5 (no stress information).
        Returns a float64 array, or a list without numpy.
        """
        if np is None:
            zero = [sum(row[j] for row in self.time_zero)
                    for j in range(self.width)]
            one = [sum(row[j] for row in self.time_one)
                   for j in range(self.width)]
            return [z / (z + o) if z + o > 0.0 else 0.5
                    for z, o in zip(zero, one)]
        zero = self.time_zero.sum(axis=0)
        total = zero + self.time_one.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            bias = np.where(total > 0.0, zero / np.maximum(total, 1e-300), 0.5)
        return bias

    def cell_bias_to_zero(self):
        """Per-cell (entries x width) bias towards "0"."""
        if np is None:
            return [
                [z / (z + o) if z + o > 0.0 else 0.5
                 for z, o in zip(zrow, orow)]
                for zrow, orow in zip(self.time_zero, self.time_one)
            ]
        total = self.time_zero + self.time_one
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(total > 0.0,
                            self.time_zero / np.maximum(total, 1e-300), 0.5)

    def worst_bias(self) -> float:
        """Worst per-bit-position imbalance, as max(bias, 1-bias)."""
        bias = self.bias_to_zero()
        return float(max(max(b, 1.0 - b) for b in bias))

    def worst_bit(self) -> Tuple[int, float]:
        """(bit position, bias) of the most imbalanced aggregated bit."""
        bias = self.bias_to_zero()
        best_index, best = 0, -1.0
        for index, b in enumerate(bias):
            imbalance = max(b, 1.0 - b)
            if imbalance > best:
                best_index, best = index, imbalance
        return best_index, float(bias[best_index])

    def total_observed_time(self) -> float:
        if np is None:
            return (sum(map(sum, self.time_zero))
                    + sum(map(sum, self.time_one)))
        return float(self.time_zero.sum() + self.time_one.sum())

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """Live metric tree over the residency accounting.

        Bias reads aggregate only *closed* intervals (the matrices);
        intervals still open at snapshot time contribute after the next
        value change or :meth:`finalize` — reading never mutates.
        """
        ms = MetricSet()
        ms.counter("observed_time", read=self.total_observed_time,
                   help="sum of all closed residency intervals")
        ms.gauge("worst_bias", read=self.worst_bias)
        return ms
