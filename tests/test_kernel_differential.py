"""Differential tests pinning the hot-path kernel refactor.

The cache keeps incremental ``inverted_count()`` / ``shadow_count()``
counters and a position-indexed LRU, and offers a batched ``replay()``
next to per-access ``access()``.  These tests compare all of that
against brute-force oracles:

- counters vs. an O(sets x ways) rescan of the public line state,
- ``replay()`` vs. an ``access()``-per-address run (hit/miss sequence,
  stats, counters and final line states),
- a reset ``ProtectedCache`` vs. a freshly-built one.

Streams are random but seeded; every scheme granularity of Section
3.2.1 is covered.
"""

import random

import pytest

from repro.core.cache_like import (
    LineDynamicScheme,
    LineFixedScheme,
    ProtectedCache,
    SetFixedScheme,
    WayFixedScheme,
)
from repro.uarch.cache import Cache, CacheConfig, LineState

CONFIG = CacheConfig(name="diff-2K-4w", size_bytes=2 * 1024, ways=4)

SCHEME_FACTORIES = {
    "set_fixed": lambda: SetFixedScheme(0.5, rotation_period=500),
    "way_fixed": lambda: WayFixedScheme(0.5, rotation_period=500),
    "line_fixed": lambda: LineFixedScheme(0.5),
    "line_dynamic": lambda: LineDynamicScheme(
        ratio=0.6, threshold=0.02, warmup=200, test_window=200,
        period=1200,
    ),
}


def random_stream(seed: int, length: int = 3000,
                  span_lines: int = 128) -> list:
    """Mixed locality: hot lines plus a uniform tail."""
    rng = random.Random(seed)
    hot = [rng.randrange(span_lines // 4) * 64 for __ in range(16)]
    stream = []
    for __ in range(length):
        if rng.random() < 0.6:
            stream.append(rng.choice(hot))
        else:
            stream.append(rng.randrange(span_lines) * 64)
    return stream


def oracle_inverted_count(cache: Cache) -> int:
    """Brute-force rescan through the public line-state API."""
    return sum(
        1
        for set_index in range(cache.config.sets)
        for way in range(cache.config.ways)
        if cache.line_state(set_index, way) is LineState.INVERTED
    )


def oracle_shadow_count(cache: Cache) -> int:
    return sum(
        1
        for set_index in range(cache.config.sets)
        for way in range(cache.config.ways)
        if cache.is_shadow(set_index, way)
    )


def snapshot(cache: Cache):
    """Full observable line state, via the public API."""
    return [
        (cache.line_state(s, w), cache.is_shadow(s, w),
         cache.lru_position(s, p))
        for s in range(cache.config.sets)
        for p in range(cache.config.ways)
        for w in range(cache.config.ways)
    ]


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
@pytest.mark.parametrize("seed", [1, 2, 3])
class TestCountersMatchOracle:
    def test_counters_track_rescan(self, scheme_name, seed):
        protected = ProtectedCache(
            Cache(CONFIG), SCHEME_FACTORIES[scheme_name](), seed=seed
        )
        cache = protected.cache
        for index, address in enumerate(random_stream(seed)):
            protected.access(address)
            if index % 97 == 0:
                assert cache.inverted_count() == \
                    oracle_inverted_count(cache)
                assert cache.shadow_count() == oracle_shadow_count(cache)
        assert cache.inverted_count() == oracle_inverted_count(cache)
        assert cache.shadow_count() == oracle_shadow_count(cache)

    def test_replay_matches_per_access_run(self, scheme_name, seed):
        stream = random_stream(seed + 100)
        one = ProtectedCache(Cache(CONFIG),
                             SCHEME_FACTORIES[scheme_name](), seed=seed)
        hit_sequence = [one.access(address) for address in stream]

        two = ProtectedCache(Cache(CONFIG),
                             SCHEME_FACTORIES[scheme_name](), seed=seed)
        replay_hits = two.replay(stream)

        assert replay_hits == sum(hit_sequence)
        assert one.stats == two.stats
        assert one.cache.inverted_count() == two.cache.inverted_count()
        assert one.cache.shadow_count() == two.cache.shadow_count()
        assert snapshot(one.cache) == snapshot(two.cache)

    def test_reset_reproduces_first_run(self, scheme_name, seed):
        stream = random_stream(seed + 200)
        protected = ProtectedCache(
            Cache(CONFIG), SCHEME_FACTORIES[scheme_name](), seed=seed
        )
        protected.replay(stream)
        first_stats = protected.stats
        first_state = snapshot(protected.cache)

        protected.reset()
        assert protected.stats.accesses == 0
        protected.replay(stream)
        assert protected.stats == first_stats
        assert snapshot(protected.cache) == first_state


class TestBaselineReplay:
    def test_replay_matches_access_loop(self):
        stream = random_stream(7)
        one, two = Cache(CONFIG), Cache(CONFIG)
        hit_sequence = [one.access(address) for address in stream]
        assert two.replay(stream) == sum(hit_sequence)
        assert one.stats == two.stats
        assert snapshot(one) == snapshot(two)

    def test_replay_hit_sequence_prefixes(self):
        # replay() over any prefix leaves the same state as access():
        # replaying the rest must produce the same totals.
        stream = random_stream(8)
        one, two = Cache(CONFIG), Cache(CONFIG)
        for address in stream:
            one.access(address)
        two.replay(stream[:1000])
        two.replay(stream[1000:])
        assert one.stats == two.stats


class TestCandidateHelpers:
    def test_invert_candidate_prefers_invalid(self):
        cache = Cache(CONFIG)
        cache.access(0)  # fill one line of set 0
        assert cache.invert_candidate(0, 1)
        # A free win: the inverted line is not the freshly-filled one.
        assert cache.line_state(0, 0) is LineState.VALID or \
            cache.inverted_count() == 1
        assert cache.inverted_count() == oracle_inverted_count(cache)

    def test_invert_candidate_respects_min_position(self):
        cache = Cache(CONFIG)
        ways = CONFIG.ways
        # Fill every way of set 0 -> no INVALID left in that set.
        for way in range(ways):
            cache.access(way * CONFIG.sets * CONFIG.line_bytes)
        assert cache.invert_candidate(0, ways - 1)
        # Only the LRU position was eligible.
        victim = cache.lru_position(0, ways - 1)
        assert cache.line_state(0, victim) is LineState.INVERTED
        # That slot is INVERTED now (and not a free INVALID win), so no
        # further candidate exists at this min_position.
        assert not cache.invert_candidate(0, ways - 1)

    def test_shadow_candidate_marks_lru_valid(self):
        cache = Cache(CONFIG)
        for way in range(CONFIG.ways):
            cache.access(way * CONFIG.sets * CONFIG.line_bytes)
        assert cache.shadow_candidate(0, 1)
        assert cache.shadow_count() == 1
        marked = [w for w in range(CONFIG.ways) if cache.is_shadow(0, w)]
        assert marked == [cache.lru_position(0, CONFIG.ways - 1)]

    def test_shadow_candidate_empty_set(self):
        cache = Cache(CONFIG)
        assert not cache.shadow_candidate(0, 1)
        assert cache.shadow_count() == 0
