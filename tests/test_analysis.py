"""Tests for aggregation helpers and report formatting."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import (
    bias_band,
    format_histogram,
    format_series,
    format_table,
    merge_bias_arrays,
    worst_imbalance,
)


class TestMergeBias:
    def test_uniform_weights(self):
        merged = merge_bias_arrays([np.array([0.2]), np.array([0.8])])
        assert merged[0] == pytest.approx(0.5)

    def test_explicit_weights(self):
        merged = merge_bias_arrays(
            [np.array([0.0]), np.array([1.0])], weights=[1.0, 3.0]
        )
        assert merged[0] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_bias_arrays([])
        with pytest.raises(ValueError):
            merge_bias_arrays([np.zeros(2), np.zeros(3)])
        with pytest.raises(ValueError):
            merge_bias_arrays([np.zeros(2)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            merge_bias_arrays([np.zeros(2)], weights=[0.0])


class TestBiasSummaries:
    def test_worst_imbalance_finds_extreme(self):
        bias = np.array([0.5, 0.9, 0.4])
        index, value = worst_imbalance(bias)
        assert index == 1
        assert value == pytest.approx(0.9)

    def test_worst_imbalance_symmetric(self):
        bias = np.array([0.5, 0.05])
        index, __ = worst_imbalance(bias)
        assert index == 1

    def test_bias_band(self):
        low, high = bias_band(np.array([0.65, 0.7, 0.9]))
        assert (low, high) == (pytest.approx(0.65), pytest.approx(0.9))


class TestFormatters:
    def test_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_series_renders_bars(self):
        text = format_series({"x": 0.5, "y": 0.25}, title="S")
        assert "50.00%" in text
        assert "#" in text

    def test_series_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series({})

    def test_histogram(self):
        text = format_histogram([0.1, 0.2, 0.2, 0.9], bins=4)
        assert text.count("\n") == 3

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            format_histogram([])
        with pytest.raises(ValueError):
            format_histogram([1.0], bins=0)
