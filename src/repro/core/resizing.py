"""Transistor resizing as the fallback mitigation (Sections 3.1 / 3.2).

When balancing is infeasible — a block busy most of the time, or a bit
stuck beyond the 50% budget — the paper's escape hatch is widening the
offending transistors: "resize those PMOS transistors that are expected
to make the block fail before the target lifetime has elapsed, which has
a cost in delay, area and power".

This module turns an aging report into a resizing plan and prices it:
widened PMOS tolerate full bias (ref [19]), the block's guardband then
follows the worst *remaining* narrow device, and the extra area is
charged to TDP (the paper's simplifying assumption in Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuits.aging import AgingSimulator
from repro.core.metric import BlockCost
from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel
from repro.nbti.transistor import PMOSTransistor, WidthClass

#: Area of a widened PMOS relative to a minimum-width one.  Doubling the
#: width is the textbook sizing step that meaningfully slows NBTI.
WIDE_AREA_FACTOR = 2.0


@dataclass(frozen=True)
class ResizingPlan:
    """Which transistors to widen and what it costs."""

    resized: Tuple[str, ...]
    duty_threshold: float
    residual_worst_duty: float
    guardband: float
    area_overhead: float

    @property
    def count(self) -> int:
        return len(self.resized)

    def block_cost(self, name: str = "resized-block",
                   delay: float = 1.0) -> BlockCost:
        """Price the plan as a metric block (area charged to TDP)."""
        return BlockCost(
            name=name,
            delay=delay,
            guardband=self.guardband,
            tdp=1.0 + self.area_overhead,
        )


def plan_resizing(
    simulator: AgingSimulator,
    duty_threshold: float = 0.8,
    model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> ResizingPlan:
    """Widen every narrow PMOS whose duty exceeds ``duty_threshold``.

    Parameters
    ----------
    simulator:
        An aged circuit (drive it with the block's input schedule first).
    duty_threshold:
        Zero-signal probability beyond which a narrow device cannot meet
        the target lifetime and must be widened.

    Returns
    -------
    ResizingPlan
        The victims, the guardband of the resized design (set by the
        worst remaining narrow PMOS), and the relative area overhead.
    """
    if not 0.5 <= duty_threshold <= 1.0:
        raise ValueError("duty_threshold must be within [0.5, 1.0]")
    circuit = simulator.circuit
    narrow = circuit.narrow_pmos()
    if not narrow:
        raise ValueError("circuit has no narrow PMOS to resize")

    victims: List[PMOSTransistor] = []
    residual = 0.0
    for pmos in narrow:
        duty = simulator.pmos_duty(pmos)
        if duty > duty_threshold:
            victims.append(pmos)
        else:
            residual = max(residual, duty)

    total_pmos = len(circuit.pmos_transistors())
    area_overhead = (
        len(victims) * (WIDE_AREA_FACTOR - 1.0) / total_pmos
    )
    return ResizingPlan(
        resized=tuple(p.name for p in victims),
        duty_threshold=duty_threshold,
        residual_worst_duty=residual,
        guardband=model.guardband_for_duty(residual),
        area_overhead=area_overhead,
    )


def apply_resizing(simulator: AgingSimulator, plan: ResizingPlan) -> int:
    """Re-size the planned transistors' gates to WIDE in the netlist.

    Widening is per-gate (a gate's pull-up network is sized together),
    so every gate owning a victim PMOS is converted.  Returns the number
    of gates changed.
    """
    circuit = simulator.circuit
    victims = set(plan.resized)
    gate_names = [
        gate.name
        for gate in circuit.gates
        if any(p.name in victims for p in gate.pmos)
    ]
    return circuit.resize_gates(gate_names, WidthClass.WIDE)


def resizing_tradeoff(
    simulator: AgingSimulator,
    thresholds: Sequence[float] = (0.95, 0.9, 0.8, 0.7, 0.6),
    model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> List[ResizingPlan]:
    """Sweep the resizing aggressiveness: guardband vs area.

    Lower thresholds widen more devices: the guardband shrinks toward
    the 2% floor while the area (TDP) overhead grows — the delay/area/
    power cost the paper repeatedly warns about.
    """
    return [
        plan_resizing(simulator, threshold, model)
        for threshold in thresholds
    ]
