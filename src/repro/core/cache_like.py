"""Invalidate-and-invert schemes for cache-like blocks (Section 3.2.1).

Most cache contents are dead ("they will be evicted before being
reused"), so a fraction K of the lines can be kept *invalid and holding
inverted repair values* to balance bit-cell stress.  The paper evaluates
three schemes on the DL0 and the DTLB (Section 4.6):

- ``SetFixed50%`` — half of the sets are inverted at any time; the cache
  effectively halves.
- ``LineFixed50%`` — half of the *lines* are inverted; whenever an
  inverted line is refilled, a valid line from a random set is inverted
  (from the LRU position, where hits are rare).
- ``LineDynamic60%`` — 60% of the lines are inverted, but the mechanism
  periodically tests how many extra misses it would induce (via a shadow
  would-be-inverted bit per line) and deactivates itself for programs
  that use the whole cache.

Performance impact is evaluated by replaying per-suite address streams
through a baseline and a protected cache and converting the extra misses
into a CPI loss with an overlap-discounted miss penalty.

Schemes are registered by name in
:data:`repro.config.registry.CACHE_SCHEMES` (``set_fixed``,
``way_fixed``, ``line_fixed``, ``line_dynamic``), which is how JSON
configs, ``repro run`` and :func:`repro.api.build_scheme` construct
them; register new subclasses there to make them sweepable by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.obs.trace import TRACER as _TRACER
from repro.uarch.backends import get_backend
from repro.uarch.cache import Cache, CacheConfig, LineState

#: Default fraction of lines kept inverted (perfect balancing needs 50%).
DEFAULT_INVERT_RATIO = 0.5

#: Effective (overlap-discounted) miss penalties in cycles per extra
#: miss, used to convert miss-rate deltas into CPI deltas.
DL0_EFFECTIVE_PENALTY = 3.0
DTLB_EFFECTIVE_PENALTY = 10.0

#: DL0 accesses per uop of the performance-loss model (the loads+stores
#: fraction of the uop mix); shared by every cache study so losses stay
#: comparable across them.
DL0_ACCESSES_PER_UOP = 0.36


class InversionScheme:
    """Base class: owns the inversion policy of one protected cache."""

    __slots__ = ("name", "cache", "rng")

    def __init__(self) -> None:
        self.name = "baseline"

    def attach(self, cache: Cache, rng: random.Random) -> None:
        self.cache = cache
        self.rng = rng

    def access(self, address: int) -> bool:
        """One lookup through the scheme; returns hit/miss."""
        hit = self.cache.access(address)
        self.maintain()
        return hit

    def replay(self, addresses: Iterable[int]) -> int:
        """Access a whole stream through the scheme; returns the hits.

        Bit-exact equivalent of calling :meth:`access` per address with
        the method lookups hoisted out of the loop.
        """
        access = self.access
        hits = 0
        for address in addresses:
            if access(address):
                hits += 1
        return hits

    def maintain(self) -> None:
        """Restore the scheme's invariants after an access."""

    def reset(self) -> None:
        """Forget mutable pre-attach state; :meth:`attach` redoes the rest."""

    # -- helpers shared by line-granularity schemes ---------------------
    def _min_invert_position(self, ratio: float) -> int:
        """First LRU-stack position eligible for inversion.

        The paper picks victims from the LRU end because "most of the
        cache access hits occur in the MRU position"; restricting
        inversion to the bottom of the stack also caps how many lines of
        any single set can be inverted, so hot sets keep their live
        lines.
        """
        ways = self.cache.config.ways
        return max(1, int(ways * (1.0 - ratio)))

    def _invert_one_line(self, min_position: int, tries: int = 4) -> bool:
        """Invert a line from a random set, preferring free wins.

        Empty (INVALID) lines are inverted at no cost; otherwise a valid
        line from the LRU tail of the stack is taken.  Returns False
        when no chosen set has an eligible line (the paper: "another try
        will be done in the future").
        """
        cache = self.cache
        invert_candidate = cache.invert_candidate
        randrange = self.rng.randrange
        sets = cache.config.sets
        for __ in range(max(1, tries)):
            if invert_candidate(randrange(sets), min_position):
                return True
        return False


class SetFixedScheme(InversionScheme):
    """Set-granularity inversion with round-robin rotation.

    A window of sets holds inverted repair values; the index hash folds
    every line address into the remaining *live* sets, so "the cache
    works as if it had half the size" (capacity halves, everything stays
    cacheable).  The window rotates at coarse periods, costing a burst
    of remap misses — which is why the paper rotates rarely.
    """

    __slots__ = ("ratio", "rotation_period", "_first_inverted",
                 "_accesses", "_count", "_live")

    def __init__(
        self,
        ratio: float = DEFAULT_INVERT_RATIO,
        rotation_period: int = 100_000,
    ) -> None:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("ratio must be within [0, 1)")
        if rotation_period <= 0:
            raise ValueError("rotation_period must be positive")
        self.ratio = ratio
        self.rotation_period = rotation_period
        self.name = f"SetFixed{int(round(ratio * 100))}%"
        self._first_inverted = 0
        self._accesses = 0

    def reset(self) -> None:
        self._first_inverted = 0
        self._accesses = 0

    def attach(self, cache: Cache, rng: random.Random) -> None:
        super().attach(cache, rng)
        self._count = int(cache.config.sets * self.ratio)
        self._rebuild_live_sets()
        self._apply_window()

    def access(self, address: int) -> bool:
        self._accesses += 1
        if self._accesses % self.rotation_period == 0:
            self._rotate()
        return self.cache.access(self._remap(address))

    def inverted_sets(self) -> List[int]:
        return [
            s for s in range(self.cache.config.sets)
            if self._is_inverted_set(s)
        ]

    # -- internals ------------------------------------------------------
    def _remap(self, address: int) -> int:
        """Fold the line address into the live sets, preserving the tag.

        The synthetic address is chosen so that its set index is a live
        set and its tag encodes the *entire* original line id, keeping
        distinct lines distinguishable after folding.
        """
        config = self.cache.config
        line = address // config.line_bytes
        target_set = self._live[line % len(self._live)]
        pseudo_line = target_set + config.sets * line
        return pseudo_line * config.line_bytes

    def _is_inverted_set(self, set_index: int) -> bool:
        sets = self.cache.config.sets
        offset = (set_index - self._first_inverted) % sets
        return offset < self._count

    def _rebuild_live_sets(self) -> None:
        self._live = [
            s for s in range(self.cache.config.sets)
            if not self._is_inverted_set(s)
        ]

    def _apply_window(self) -> None:
        for set_index in range(self.cache.config.sets):
            if self._is_inverted_set(set_index):
                for way in range(self.cache.config.ways):
                    self.cache.invert_line(set_index, way)

    def _rotate(self) -> None:
        """Advance the inverted window by one set (coarse round-robin)."""
        sets = self.cache.config.sets
        leaving = self._first_inverted
        entering = (self._first_inverted + self._count) % sets
        for way in range(self.cache.config.ways):
            self.cache.invalidate_line(leaving, way)
            self.cache.invert_line(entering, way)
        self._first_inverted = (self._first_inverted + 1) % sets
        self._rebuild_live_sets()


class WayFixedScheme(InversionScheme):
    """Way-granularity inversion with round-robin rotation.

    A subset of the ways in *every* set holds inverted repair values:
    "the cache works as if it had lower associativity and smaller size"
    (Section 3.2.1).  The inverted ways rotate round-robin; on rotation
    the entering way is invalidated-and-inverted (its contents are lost,
    the coarse-period analogue of the set scheme's remap misses).
    """

    __slots__ = ("ratio", "rotation_period", "_first", "_accesses",
                 "_count")

    def __init__(
        self,
        ratio: float = DEFAULT_INVERT_RATIO,
        rotation_period: int = 100_000,
    ) -> None:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("ratio must be within [0, 1)")
        if rotation_period <= 0:
            raise ValueError("rotation_period must be positive")
        self.ratio = ratio
        self.rotation_period = rotation_period
        self.name = f"WayFixed{int(round(ratio * 100))}%"
        self._first = 0
        self._accesses = 0

    def reset(self) -> None:
        self._first = 0
        self._accesses = 0

    def attach(self, cache: Cache, rng: random.Random) -> None:
        super().attach(cache, rng)
        self._count = max(1, int(cache.config.ways * self.ratio))
        if self._count >= cache.config.ways:
            raise ValueError("cannot invert every way")
        # The inverted ways are statically out of service: replacement
        # must spill to the live ways instead of reclaiming them.
        cache.allow_inverted_victims = False
        self._apply_window()

    def access(self, address: int) -> bool:
        self._accesses += 1
        if self._accesses % self.rotation_period == 0:
            self._rotate()
        return self.cache.access(address)

    def inverted_ways(self):
        return [
            (self._first + offset) % self.cache.config.ways
            for offset in range(self._count)
        ]

    def _apply_window(self) -> None:
        for way in self.inverted_ways():
            for set_index in range(self.cache.config.sets):
                self.cache.invert_line(set_index, way)

    def _rotate(self) -> None:
        leaving = self._first
        self._first = (self._first + 1) % self.cache.config.ways
        entering = (self._first + self._count - 1) % self.cache.config.ways
        for set_index in range(self.cache.config.sets):
            self.cache.invalidate_line(set_index, leaving)
            self.cache.invert_line(set_index, entering)


class LineFixedScheme(InversionScheme):
    """Line-granularity inversion at a fixed ratio (INVCOUNT-based)."""

    __slots__ = ("ratio", "threshold", "_min_position")

    def __init__(self, ratio: float = DEFAULT_INVERT_RATIO) -> None:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("ratio must be within [0, 1)")
        self.ratio = ratio
        self.name = f"LineFixed{int(round(ratio * 100))}%"

    def attach(self, cache: Cache, rng: random.Random) -> None:
        super().attach(cache, rng)
        self.threshold = int(cache.config.lines * self.ratio)
        self._min_position = self._min_invert_position(self.ratio)
        # Cold start: every line is invalid, so inverting the target
        # fraction up front costs nothing.  Spread evenly across sets so
        # no set starts with fewer usable ways than its share.
        inverted = 0
        for way in range(cache.config.ways):
            for set_index in range(cache.config.sets):
                if inverted >= self.threshold:
                    return
                cache.invert_line(set_index, way)
                inverted += 1

    def maintain(self) -> None:
        # INVCOUNT below INVTHRESHOLD after a refill consumed an inverted
        # line: invert a valid line from a random set (one try per
        # access; a failed try repeats later because INVCOUNT stays low).
        # inverted_count() is an O(1) counter, so this costs one compare
        # on the (common) balanced path.
        if self.cache.inverted_count() < self.threshold:
            self._invert_one_line(self._min_position)

    def replay(self, addresses) -> int:
        """Hot-loop specialisation of the generic scheme replay.

        Bit-exact against access()+maintain() per address (the RNG is
        consumed in the same order); all lookups are hoisted.
        """
        cls = type(self)
        if (cls.maintain is not LineFixedScheme.maintain
                or cls.access is not InversionScheme.access
                or cls._invert_one_line
                is not InversionScheme._invert_one_line):
            # A subclass changed the per-access behaviour: the inlined
            # loop below would silently bypass it, so take the generic
            # access()-per-address path instead.
            return super().replay(addresses)
        cache = self.cache
        cache_access = cache.access
        inverted_count = cache.inverted_count
        invert_candidate = cache.invert_candidate
        randrange = self.rng.randrange
        sets = cache.config.sets
        threshold = self.threshold
        min_position = self._min_position
        tries = range(4)
        hits = 0
        for address in addresses:
            if cache_access(address):
                hits += 1
            if inverted_count() < threshold:
                for __ in tries:
                    if invert_candidate(randrange(sets), min_position):
                        break
        return hits


class LineDynamicScheme(InversionScheme):
    """Line inversion with periodic self-tests (LineDynamic60%).

    Every ``period`` accesses the mechanism re-decides whether to run:
    it warms the cache up, then marks shadow "would-be-inverted" bits on
    LRU lines and counts hits on them as induced extra misses; if the
    induced extra miss rate exceeds ``threshold`` the mechanism stays
    off for the rest of the period.
    """

    __slots__ = ("ratio", "threshold", "warmup", "test_window", "period",
                 "_accesses", "_active", "_test_start_shadow_hits",
                 "_decisions", "_line_target", "_min_position")

    def __init__(
        self,
        ratio: float = 0.6,
        threshold: float = 0.02,
        warmup: int = 20_000,
        test_window: int = 20_000,
        period: int = 200_000,
    ) -> None:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("ratio must be within [0, 1)")
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        if warmup <= 0 or test_window <= 0:
            raise ValueError("warmup and test_window must be positive")
        if period <= warmup + test_window:
            raise ValueError("period must exceed warmup + test_window")
        self.ratio = ratio
        self.threshold = threshold
        self.warmup = warmup
        self.test_window = test_window
        self.period = period
        self.name = f"LineDynamic{int(round(ratio * 100))}%"
        self._accesses = 0
        self._active = False
        self._test_start_shadow_hits = 0
        self._decisions: List[bool] = []

    def reset(self) -> None:
        self._accesses = 0
        self._active = False
        self._test_start_shadow_hits = 0
        self._decisions = []

    def attach(self, cache: Cache, rng: random.Random) -> None:
        super().attach(cache, rng)
        self._line_target = int(cache.config.lines * self.ratio)
        self._min_position = self._min_invert_position(self.ratio)

    def access(self, address: int) -> bool:
        phase = self._accesses % self.period
        if phase == self.warmup:
            self._begin_test()
        elif phase == self.warmup + self.test_window:
            self._end_test()
        self._accesses += 1
        hit = self.cache.access(address)
        self.maintain()
        return hit

    def maintain(self) -> None:
        phase = (self._accesses - 1) % self.period
        in_test = self.warmup <= phase < self.warmup + self.test_window
        if in_test:
            # Keep the shadow population at the target ratio.
            if self.cache.shadow_count() < self._line_target:
                self._shadow_one_line()
        elif self._active:
            if self.cache.inverted_count() < self._line_target:
                self._invert_one_line(self._min_position)

    @property
    def active(self) -> bool:
        return self._active

    @property
    def activation_history(self) -> Tuple[bool, ...]:
        """The activate/deactivate decision of each completed test."""
        return tuple(self._decisions)

    # -- internals ------------------------------------------------------
    def _begin_test(self) -> None:
        # Tests run with the mechanism disengaged: restore capacity.
        self._set_active(False)
        self.cache.clear_shadow()
        self._test_start_shadow_hits = self.cache.stats.shadow_hits

    def _end_test(self) -> None:
        induced = self.cache.stats.shadow_hits - self._test_start_shadow_hits
        rate = induced / self.test_window
        decision = rate <= self.threshold
        self._decisions.append(decision)
        # Rare discrete event (once per period): worth an instant marker
        # so traces show *why* a run's inversion activity changed.
        _TRACER.instant("scheme.decide", scheme=self.name,
                        active=decision, induced_rate=rate)
        self.cache.clear_shadow()
        self._set_active(decision)

    def _set_active(self, active: bool) -> None:
        if self._active and not active:
            # Deactivation restores the full capacity.
            for set_index in range(self.cache.config.sets):
                for way in range(self.cache.config.ways):
                    if self.cache.line_state(set_index, way) is LineState.INVERTED:
                        self.cache.invalidate_line(set_index, way)
        self._active = active

    def _shadow_one_line(self) -> None:
        cache = self.cache
        cache.shadow_candidate(self.rng.randrange(cache.config.sets),
                               self._min_position)


class ProtectedCache:
    """A cache (or TLB) guarded by an inversion scheme."""

    __slots__ = ("cache", "scheme", "seed")

    def __init__(
        self,
        cache: Cache,
        scheme: InversionScheme,
        seed: int = 0,
    ) -> None:
        self.cache = cache
        self.scheme = scheme
        self.seed = seed
        scheme.attach(cache, random.Random(seed))

    def access(self, address: int) -> bool:
        return self.scheme.access(address)

    def replay(self, addresses) -> int:
        """Replay a whole address stream; returns the number of hits."""
        # One span per protected replay call, delta-annotated with the
        # victim-scan work (inversions) the scheme performed inside it.
        _t = _TRACER.begin()
        if _t is None:
            return self._dispatch_replay(addresses)
        before = self.cache.stats.inversions
        hits = self._dispatch_replay(addresses)
        stats = self.cache.stats
        _TRACER.end(_t, "scheme.replay", scheme=self.scheme.name,
                    cache=self.cache.config.name,
                    inversions=stats.inversions - before,
                    inverted_lines=self.cache.inverted_count())
        return hits

    def _dispatch_replay(self, addresses) -> int:
        """Route the stream through the cache engine's batched scheme
        path when it has one (``replay_scheme``, see
        :mod:`repro.uarch.backends.vectorized`); the engine declines —
        returns ``None`` without consuming the stream — for schemes it
        cannot batch, which fall back to the generic scalar replay."""
        fast = getattr(self.cache, "replay_scheme", None)
        if fast is not None:
            hits = fast(self.scheme, addresses)
            if hits is not None:
                return hits
        return self.scheme.replay(addresses)

    def translate(self, address: int) -> bool:
        """TLB-compatible alias of :meth:`access`."""
        return self.scheme.access(address)

    def reset(self) -> None:
        """Cold cache + scheme re-attached with the original seed.

        Replaying the same stream after a reset reproduces the first
        run bit-exactly (the scheme RNG is rebuilt from ``seed``).
        """
        self.cache.reset()
        self.scheme.reset()
        self.scheme.attach(self.cache, random.Random(self.seed))

    @property
    def stats(self):
        return self.cache.stats

    @property
    def config(self):
        return self.cache.config

    def metrics(self):
        """The wrapped cache's metric tree plus the scheme annotation."""
        ms = self.cache.metrics()
        ms.text("scheme", read=lambda: self.scheme.name)
        return ms


# ----------------------------------------------------------------------
# Study harness (Table 3)
# ----------------------------------------------------------------------
def performance_loss(
    baseline_miss_rate: float,
    scheme_miss_rate: float,
    accesses_per_uop: float,
    effective_penalty: float,
    base_cpi: float = 0.8,
) -> float:
    """CPI loss from the extra misses a scheme induces.

    ``loss = accesses_per_uop * (Δmiss_rate) * penalty / base_cpi``,
    floored at zero (a scheme cannot speed the program up; tiny negative
    deltas are replacement-policy noise).
    """
    if accesses_per_uop < 0.0 or effective_penalty < 0.0 or base_cpi <= 0.0:
        raise ValueError("invalid performance-model parameters")
    delta = max(0.0, scheme_miss_rate - baseline_miss_rate)
    return accesses_per_uop * delta * effective_penalty / base_cpi


@dataclass(frozen=True, slots=True)
class CacheStudyResult:
    """Average performance loss of one (config, scheme) pair."""

    config_name: str
    scheme_name: str
    mean_loss: float
    per_stream_loss: Tuple[float, ...]
    baseline_miss_rate: float
    scheme_miss_rate: float
    mean_inverted_ratio: float

    @property
    def fraction_above(self) -> "LossTail":
        return LossTail(self.per_stream_loss)


@dataclass(frozen=True, slots=True)
class LossTail:
    """Tail statistics over per-stream losses (Section 4.6's 5%/10%)."""

    losses: Tuple[float, ...]

    def above(self, threshold: float) -> float:
        if not self.losses:
            return 0.0
        return sum(1 for loss in self.losses if loss > threshold) / len(
            self.losses
        )


def run_cache_study(
    config: CacheConfig,
    scheme_factory,
    address_streams: Sequence[Sequence[int]],
    accesses_per_uop: float = DL0_ACCESSES_PER_UOP,
    effective_penalty: float = DL0_EFFECTIVE_PENALTY,
    base_cpi: float = 0.8,
    seed: int = 0,
    backend: str = "reference",
) -> CacheStudyResult:
    """Replay streams through baseline and protected caches.

    Parameters
    ----------
    config:
        Cache geometry under study.
    scheme_factory:
        Zero-argument callable building a fresh scheme per stream (None
        builds a plain baseline run, useful for sanity checks).
    address_streams:
        One address sequence per workload trace.
    backend:
        Kernel backend name building the cache engines
        (:func:`repro.uarch.backends.get_backend`); results are
        bit-identical across backends by contract.
    """
    engine = get_backend(backend)
    losses: List[float] = []
    base_rates: List[float] = []
    scheme_rates: List[float] = []
    inverted_ratios: List[float] = []
    # One factory probe names the scheme even when ``address_streams``
    # is empty (deriving it from a loop side effect used to mislabel
    # empty studies as "baseline").
    scheme_name = (
        "baseline" if scheme_factory is None else scheme_factory().name
    )
    for stream_index, stream in enumerate(address_streams):
        baseline = engine.make_cache(config)
        baseline.replay(stream)
        base_rate = baseline.stats.miss_rate

        if scheme_factory is None:
            scheme_rate = base_rate
        else:
            scheme = scheme_factory()
            protected = ProtectedCache(engine.make_cache(config), scheme,
                                       seed=seed + stream_index)
            protected.replay(stream)
            scheme_rate = protected.stats.miss_rate
            inverted_ratios.append(
                protected.cache.inverted_count() / config.lines
            )
        base_rates.append(base_rate)
        scheme_rates.append(scheme_rate)
        losses.append(
            performance_loss(base_rate, scheme_rate, accesses_per_uop,
                             effective_penalty, base_cpi)
        )
    n = max(1, len(losses))
    return CacheStudyResult(
        config_name=config.name,
        scheme_name=scheme_name,
        mean_loss=sum(losses) / n,
        per_stream_loss=tuple(losses),
        baseline_miss_rate=sum(base_rates) / n,
        scheme_miss_rate=sum(scheme_rates) / n,
        mean_inverted_ratio=(
            sum(inverted_ratios) / len(inverted_ratios)
            if inverted_ratios else 0.0
        ),
    )


#: Table 3 deactivation thresholds: induced extra miss rate above which
#: LineDynamic disengages, per structure size (Section 4.6).
PAPER_DYNAMIC_THRESHOLDS: Mapping[str, float] = {
    "DL0-32K": 0.02,
    "DL0-16K": 0.03,
    "DL0-8K": 0.04,
    "DTLB-128": 0.005,
    "DTLB-64": 0.01,
    "DTLB-32": 0.02,
}
