"""Bounded fan-out of job messages to WebSocket subscribers.

One :class:`Hub` per job bridges the executor thread running the sweep
(and the event-log tailer) to any number of WS subscribers.  Two rules
keep a slow or dead consumer from ever touching the run:

1. **Bounded queues.**  Each subscription is a bounded
   ``asyncio.Queue``; ``publish`` uses ``put_nowait`` only.  The
   publisher never awaits a consumer.
2. **Drop the subscriber, not the messages.**  A full queue means the
   consumer fell behind by the whole buffer; rather than silently
   skipping records (a gap a client can't detect), the subscription is
   marked dropped, its queue is cleared, and it is handed a close
   sentinel — the WS handler then closes with code 1013 ("try again
   later") and the client knows to reconnect/resync via
   ``GET /v1/jobs/{id}``.

A bounded replay backlog lets subscribers who attach mid-run still see
the run from ``run_start`` — the acceptance contract for streams is
"run_start, ≥1 telemetry snapshot, run_end", however late the client
arrived.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["CLOSE", "Hub", "Subscription"]

#: Queue sentinel: the hub is finished with this subscriber (either the
#: job ended or the subscriber was dropped); the WS handler closes.
CLOSE = object()

BACKLOG = 512
QUEUE_SIZE = 2 * BACKLOG


class Subscription:
    """One consumer's bounded view of a hub."""

    __slots__ = ("queue", "dropped")

    def __init__(self, maxsize: int) -> None:
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=maxsize)
        self.dropped = False


class Hub:
    """Per-job broadcast hub (single event loop, many subscribers)."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 backlog: int = BACKLOG,
                 queue_size: int = QUEUE_SIZE) -> None:
        self._loop = loop
        self._subs: List[Subscription] = []
        self._backlog: Deque[Dict[str, Any]] = deque(maxlen=backlog)
        self._queue_size = queue_size
        self.closed = False
        self.drops = 0

    def subscribe(self) -> Subscription:
        """Attach a consumer; the backlog replays immediately.

        Subscribing to a closed hub still replays the backlog and then
        closes — a late client of a finished job sees the full
        (bounded) history plus the terminal message.
        """
        sub = Subscription(self._queue_size)
        for message in self._backlog:
            sub.queue.put_nowait(message)
        if self.closed:
            sub.queue.put_nowait(CLOSE)
        else:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        if sub in self._subs:
            self._subs.remove(sub)

    # ------------------------------------------------------------------
    def publish(self, message: Dict[str, Any]) -> None:
        """Fan a message out; must run on the hub's event loop."""
        if self.closed:
            return
        self._backlog.append(message)
        for sub in list(self._subs):
            if sub.dropped:
                continue
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                self._drop(sub)

    def publish_threadsafe(self, message: Dict[str, Any]) -> None:
        """Publish from a worker thread (executor → loop handoff)."""
        self._loop.call_soon_threadsafe(self.publish, message)

    def _drop(self, sub: Subscription) -> None:
        sub.dropped = True
        self.drops += 1
        self._subs.remove(sub)
        # Clear the stale buffer so the close sentinel is seen *now*,
        # not after the consumer chews through QUEUE_SIZE old messages.
        while True:
            try:
                sub.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        sub.queue.put_nowait(CLOSE)

    def close(self, final: Optional[Dict[str, Any]] = None) -> None:
        """Publish an optional terminal message, then end every stream."""
        if final is not None:
            self.publish(final)
        if self.closed:
            return
        self.closed = True
        for sub in self._subs:
            try:
                sub.queue.put_nowait(CLOSE)
            except asyncio.QueueFull:
                self._drop_closed(sub)
        self._subs.clear()

    def _drop_closed(self, sub: Subscription) -> None:
        sub.dropped = True
        while True:
            try:
                sub.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        sub.queue.put_nowait(CLOSE)
