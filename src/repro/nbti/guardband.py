"""Calibrated mapping from zero-signal probability to guardband and Vmin.

The paper never publishes an analytic duty->guardband curve; it quotes two
anchor points from ref [1] (Abadeer & Ellis, IRPS 2003):

- a fully-biased PMOS (zero-signal probability 100%) requires a **20%**
  cycle-time guardband, and
- a balanced PMOS (50%) requires only **2%** (the "10x reduction").

Every per-block guardband number in the paper's evaluation is consistent
with *linear interpolation* between those two anchors:

======================  ==========  ===================  ============
Block                   worst duty  linear interpolation  paper quotes
======================  ==========  ===================  ============
FP register file (ISV)  54.5%       2% + 0.045*36% = 3.6%   3.6%
Adder, 21% utilization  60.5%       2% + 0.105*36% = 5.8%   5.8%
Scheduler (worst bit)   63.2%       2% + 0.132*36% = 6.75%  6.7%
Adder, 30% utilization  65.0%       2% + 0.150*36% = 7.4%   7.4%
======================  ==========  ===================  ============

(the slope is (20% - 2%) / (100% - 50%) = 36% guardband per unit duty).
:class:`GuardbandModel` encodes exactly that calibration, clamping duties
below 50% to the minimum guardband (a bit cell cannot do better than
balanced: its two PMOS see complementary signals).

The same module maps duty to V_TH shift (10% fully-biased -> 1% balanced,
also from ref [1]) and to the Vmin increase of storage structures ("10%
Vmin increase may be required to tolerate 10% V_TH shifts", Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nbti.physics import steady_state_fill

#: Guardband required by a balanced (50% duty) PMOS — paper Section 4.2.
MIN_GUARDBAND = 0.02

#: Guardband required by a fully biased (100% duty) PMOS — paper Section 1.
WORST_GUARDBAND = 0.20

#: V_TH shift of a fully biased PMOS over the product lifetime (ref [1]).
WORST_VTH_SHIFT = 0.10

#: V_TH shift of a balanced PMOS (the 10x reduction quoted in Section 1).
BALANCED_VTH_SHIFT = 0.01

#: Vmin increase per unit of V_TH shift ("10% Vmin increase ... to
#: tolerate 10% V_TH shifts", Section 1).
VMIN_PER_VTH = 1.0


@dataclass(frozen=True)
class GuardbandModel:
    """Duty-cycle -> guardband / V_TH / Vmin calibration.

    Parameters
    ----------
    min_guardband:
        Guardband at 50% zero-signal probability (default 2%).
    worst_guardband:
        Guardband at 100% zero-signal probability (default 20%).

    Examples
    --------
    >>> model = GuardbandModel()
    >>> round(model.guardband_for_duty(0.65), 4)
    0.074
    >>> round(model.guardband_for_bias(0.455), 4)   # FP RF after ISV
    0.0362
    """

    min_guardband: float = MIN_GUARDBAND
    worst_guardband: float = WORST_GUARDBAND
    worst_vth_shift: float = WORST_VTH_SHIFT
    balanced_vth_shift: float = BALANCED_VTH_SHIFT

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_guardband < self.worst_guardband:
            raise ValueError(
                "guardband anchors must satisfy 0 <= min < worst; got "
                f"min={self.min_guardband!r} worst={self.worst_guardband!r}"
            )
        if not 0.0 < self.balanced_vth_shift < self.worst_vth_shift:
            raise ValueError("V_TH anchors must satisfy 0 < balanced < worst")

    # ------------------------------------------------------------------
    # Cycle-time guardband
    # ------------------------------------------------------------------
    @property
    def slope(self) -> float:
        """Guardband increase per unit of duty above 0.5."""
        return (self.worst_guardband - self.min_guardband) / 0.5

    def guardband_for_duty(self, duty: float) -> float:
        """Guardband required for a PMOS with the given duty cycle.

        Duties below 0.5 are clamped to the minimum guardband: in bit
        cells the complementary PMOS then exceeds 0.5, and even in
        combinational logic the paper never credits guardbands below the
        2% floor.
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be within [0, 1], got {duty!r}")
        if duty <= 0.5:
            return self.min_guardband
        return self.min_guardband + (duty - 0.5) * self.slope

    def guardband_for_bias(self, bias_to_zero: float) -> float:
        """Guardband for an SRAM bit cell with the given bias towards "0".

        A bit cell holds two cross-coupled inverters; when the cell stores
        "0" one PMOS is stressed, when it stores "1" the other one is.
        The cell's guardband is therefore governed by the *more* stressed
        of the two: duty = max(bias, 1 - bias).
        """
        if not 0.0 <= bias_to_zero <= 1.0:
            raise ValueError(f"bias must be within [0, 1], got {bias_to_zero!r}")
        return self.guardband_for_duty(max(bias_to_zero, 1.0 - bias_to_zero))

    def guardband_reduction(self, duty: float) -> float:
        """Factor by which the worst-case guardband shrinks at ``duty``.

        Returns ``worst_guardband / guardband_for_duty(duty)``; equals the
        paper's "10x" at duty 0.5.
        """
        return self.worst_guardband / self.guardband_for_duty(duty)

    # ------------------------------------------------------------------
    # V_TH shift and Vmin (storage structures)
    # ------------------------------------------------------------------
    def vth_shift_for_duty(self, duty: float) -> float:
        """Lifetime V_TH shift (fraction of nominal V_TH) at ``duty``.

        Follows the reaction–diffusion steady state, rescaled to hit the
        two anchors (1% at 50% duty, 10% at 100%).
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be within [0, 1], got {duty!r}")
        fill = steady_state_fill(duty)
        balanced_fill = steady_state_fill(0.5)
        if fill <= balanced_fill:
            # Below the balanced anchor, scale proportionally to fill.
            if balanced_fill == 0.0:
                return 0.0
            return self.balanced_vth_shift * fill / balanced_fill
        # Between the anchors, interpolate on the fill level.
        span = 1.0 - balanced_fill
        frac = (fill - balanced_fill) / span
        return self.balanced_vth_shift + frac * (
            self.worst_vth_shift - self.balanced_vth_shift
        )

    def vmin_increase_for_bias(self, bias_to_zero: float) -> float:
        """Required Vmin increase (fraction of nominal Vdd) for a cell.

        Applies the paper's rule of thumb that Vmin must rise one-for-one
        with the V_TH shift of the worst PMOS in the cell.
        """
        duty = max(bias_to_zero, 1.0 - bias_to_zero)
        return VMIN_PER_VTH * self.vth_shift_for_duty(duty)


#: Shared default calibration used across the library.
DEFAULT_GUARDBAND_MODEL = GuardbandModel()
