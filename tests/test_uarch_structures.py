"""Unit tests for register file, scheduler, MOB, ports, uop records."""

import pytest

from repro.uarch.mob import MemoryOrderBuffer
from repro.uarch.ports import AdderPolicy, AdderPool
from repro.uarch.regfile import RegisterFile
from repro.uarch.scheduler import Scheduler
from repro.uarch.uop import SCHEDULER_LAYOUT, Uop, UopClass


def make_uop(seq=0, kind=UopClass.ALU, **kwargs):
    defaults = dict(src1=1, src2=2, dst=3, src1_value=10, src2_value=20,
                    result_value=30)
    if kind.is_memory:
        defaults["address"] = 0x1000
        defaults["dst"] = 3 if kind is UopClass.LOAD else None
    defaults.update(kwargs)
    return Uop(seq=seq, uop_class=kind, **defaults)


class TestUop:
    def test_layout_totals(self):
        layout = SCHEDULER_LAYOUT
        assert layout.total_bits == 144
        offsets = layout.bit_offsets()
        assert offsets["valid"] == (0, 1)
        # Offsets tile the row without gaps.
        position = 0
        for name, width in layout.fields().items():
            assert offsets[name] == (position, width)
            position += width

    def test_memory_uop_needs_address(self):
        with pytest.raises(ValueError):
            Uop(seq=0, uop_class=UopClass.LOAD)

    def test_adder_operands_for_sub(self):
        uop = make_uop(is_sub=True, src1_value=7, src2_value=3)
        a, b, cin = uop.adder_operands()
        assert a == 7
        assert b == (~3) & 0xFFFFFFFF
        assert cin == 1

    def test_adder_operands_for_agu(self):
        uop = make_uop(kind=UopClass.LOAD, src1_value=0x2000, immediate=8)
        a, b, cin = uop.adder_operands()
        assert (a, b, cin) == (0x2000, 8, 0)

    def test_uses_adder(self):
        assert make_uop(kind=UopClass.ALU).uses_adder
        assert make_uop(kind=UopClass.LOAD).uses_adder
        assert not make_uop(kind=UopClass.BRANCH, dst=None).uses_adder

    def test_value_width(self):
        assert make_uop().value_width == 32
        assert make_uop(kind=UopClass.FP, is_fp=True).value_width == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            make_uop(seq=-1)
        with pytest.raises(ValueError):
            make_uop(opcode=1 << 12)
        with pytest.raises(ValueError):
            make_uop(latency=32)


class TestRegisterFile:
    def test_allocate_write_release_cycle(self):
        rf = RegisterFile(entries=4, width=8)
        entry = rf.allocate(0.0)
        rf.write(entry, 0xAB, 1.0)
        assert rf.read(entry) == 0xAB
        rf.release(entry, 2.0)
        assert not rf.is_busy(entry)

    def test_allocation_exhaustion(self):
        rf = RegisterFile(entries=2, width=8)
        assert rf.allocate(0.0) is not None
        assert rf.allocate(0.0) is not None
        assert rf.allocate(0.0) is None
        assert rf.next_free_time() is None

    def test_future_release_not_allocatable_early(self):
        rf = RegisterFile(entries=1, width=8)
        entry = rf.allocate(0.0)
        rf.release(entry, 10.0)
        assert rf.allocate(5.0) is None
        assert rf.next_free_time() == 10.0
        assert rf.allocate(10.0) == entry

    def test_double_release_rejected(self):
        rf = RegisterFile(entries=2, width=8)
        entry = rf.allocate(0.0)
        rf.release(entry, 1.0)
        with pytest.raises(ValueError):
            rf.release(entry, 2.0)

    def test_special_write_requires_free_entry(self):
        rf = RegisterFile(entries=2, width=8)
        entry = rf.allocate(0.0)
        assert not rf.write_special(entry, 0xFF, 1.0)  # busy
        rf.release(entry, 2.0)
        assert rf.write_special(entry, 0xFF, 3.0)
        assert rf.read(entry) == 0xFF

    def test_special_write_port_contention(self):
        rf = RegisterFile(entries=4, width=8, write_ports=1)
        a = rf.allocate(0.0)
        b = rf.allocate(0.0)
        rf.release(b, 1.0)
        rf.write(a, 1, 5.0)  # consumes the only port in cycle 5
        assert not rf.write_special(b, 0xFF, 5.2)
        assert rf.write_special(b, 0xFF, 6.0)

    def test_stale_contents_accrue_bias(self):
        rf = RegisterFile(entries=1, width=4)
        entry = rf.allocate(0.0)
        rf.write(entry, 0b1111, 0.0)
        rf.release(entry, 1.0)
        stats = rf.finalize(10.0)  # stale ones persist for 10 units
        assert stats.bias_to_zero[0] == pytest.approx(0.0)

    def test_stats_counts(self):
        rf = RegisterFile(entries=4, width=8)
        e1 = rf.allocate(0.0)
        rf.write(e1, 1, 1.0)
        rf.release(e1, 2.0)
        stats = rf.finalize(4.0)
        assert stats.allocations == 1
        assert stats.releases == 1
        assert 0.0 < stats.free_fraction < 1.0

    def test_entry_bounds_checked(self):
        rf = RegisterFile(entries=2, width=8)
        with pytest.raises(IndexError):
            rf.write(5, 0, 0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterFile(entries=0)
        with pytest.raises(ValueError):
            RegisterFile(write_ports=0)


class TestScheduler:
    def test_fill_and_release_lifecycle(self):
        sched = Scheduler(entries=4)
        slot = sched.allocate(0.0)
        sched.fill(slot, make_uop(), mob_id=None, now=0.0, dst_tag=9)
        assert sched.field_value(slot, "valid") == 1
        assert sched.field_value(slot, "dst_tag") == 9
        sched.release(slot, 3.0)
        assert sched.field_value(slot, "valid") == 0
        assert not sched.is_busy(slot)

    def test_mob_id_left_stale_for_non_memory(self):
        sched = Scheduler(entries=1)
        slot = sched.allocate(0.0)
        sched.fill(slot, make_uop(kind=UopClass.LOAD), mob_id=13, now=0.0)
        sched.release(slot, 1.0)
        slot2 = sched.allocate(1.0)
        assert slot2 == slot
        sched.fill(slot2, make_uop(seq=1), mob_id=None, now=1.0)
        # The ALU uop did not overwrite the stale MOB id.
        assert sched.field_value(slot2, "mob_id") == 13

    def test_set_field_ready_bits(self):
        sched = Scheduler(entries=2)
        slot = sched.allocate(0.0)
        sched.fill(slot, make_uop(), mob_id=None, now=0.0)
        assert sched.field_value(slot, "ready1") == 0
        sched.set_field(slot, "ready1", 1, 1.0)
        assert sched.field_value(slot, "ready1") == 1

    def test_write_special_only_free_slots(self):
        sched = Scheduler(entries=2)
        slot = sched.allocate(0.0)
        sched.fill(slot, make_uop(), mob_id=None, now=0.0)
        assert not sched.write_special(slot, {"flags": 0x3F}, 1.0)
        sched.release(slot, 2.0)
        assert sched.write_special(slot, {"flags": 0x3F}, 3.0)
        assert sched.field_value(slot, "flags") == 0x3F

    def test_valid_bit_not_repairable(self):
        sched = Scheduler(entries=2)
        slot = sched.allocate(0.0)
        sched.release(slot, 1.0)
        with pytest.raises(ValueError):
            sched.write_special(slot, {"valid": 1}, 2.0)

    def test_field_value_range_checked(self):
        sched = Scheduler(entries=1)
        slot = sched.allocate(0.0)
        with pytest.raises(ValueError):
            sched.set_field(slot, "taken", 2, 0.5)

    def test_unknown_field_rejected(self):
        sched = Scheduler(entries=1)
        slot = sched.allocate(0.0)
        with pytest.raises(KeyError):
            sched.set_field(slot, "bogus", 1, 0.5)

    def test_stats_shapes(self):
        sched = Scheduler(entries=2)
        slot = sched.allocate(0.0)
        sched.fill(slot, make_uop(), mob_id=None, now=0.0)
        sched.release(slot, 2.0)
        stats = sched.finalize(4.0)
        assert stats.occupancy == pytest.approx(2.0 / 8.0)
        flat = stats.flattened_bias()
        assert len(flat) == (SCHEDULER_LAYOUT.total_bits
                             - SCHEDULER_LAYOUT.opcode)
        full = stats.flattened_bias(include_opcode=True)
        assert len(full) == SCHEDULER_LAYOUT.total_bits
        name, value = stats.worst_field()
        assert name in SCHEDULER_LAYOUT.fields()
        assert 0.5 <= value <= 1.0


class TestMemoryOrderBuffer:
    def test_round_robin(self):
        mob = MemoryOrderBuffer(entries=4)
        assert [mob.allocate() for __ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_usage_self_balanced(self):
        mob = MemoryOrderBuffer(entries=8)
        for __ in range(800):
            mob.allocate()
        assert mob.usage_imbalance() == pytest.approx(1.0)

    def test_empty_imbalance(self):
        assert MemoryOrderBuffer().usage_imbalance() == 1.0

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            MemoryOrderBuffer(entries=0)


class TestAdderPool:
    def test_priority_policy_skews_usage(self):
        pool = AdderPool(n_adders=4, policy=AdderPolicy.PRIORITY)
        for cycle in range(100):
            # Two concurrent adds per cycle: only adders 0 and 1 work.
            pool.issue(make_uop(seq=cycle), float(cycle))
            pool.issue(make_uop(seq=cycle), float(cycle))
        low, high = pool.utilization_range(100.0)
        assert low == 0.0
        assert high == pytest.approx(1.0)

    def test_uniform_policy_balances_usage(self):
        pool = AdderPool(n_adders=4, policy=AdderPolicy.UNIFORM)
        for cycle in range(400):
            pool.issue(make_uop(seq=cycle), float(cycle))
        utils = pool.utilization(400.0)
        assert max(utils) - min(utils) < 0.05

    def test_all_busy_returns_none(self):
        pool = AdderPool(n_adders=1)
        assert pool.issue(make_uop(), 0.0) == 0
        assert pool.issue(make_uop(seq=1), 0.0) is None
        assert pool.issue(make_uop(seq=2), 1.0) == 0

    def test_reservoir_sampling_bounds(self):
        pool = AdderPool(n_adders=1, sample_capacity=16)
        for i in range(100):
            pool.issue(make_uop(seq=i), float(i))
        assert len(pool.sampled_vectors(0)) == 16
        assert len(pool.all_sampled_vectors()) == 16

    def test_sample_index_checked(self):
        with pytest.raises(IndexError):
            AdderPool(n_adders=1).sampled_vectors(3)

    def test_mean_utilization(self):
        pool = AdderPool(n_adders=2)
        pool.issue(make_uop(), 0.0)
        assert pool.mean_utilization(10.0) == pytest.approx(0.05)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdderPool(n_adders=0)
        with pytest.raises(ValueError):
            AdderPool(sample_capacity=0)
