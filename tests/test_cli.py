"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("physics", "adder", "regfile", "caches",
                        "penelope"):
            args = parser.parse_args(
                [command] if command in ("physics",)
                else [command, "--length", "100"]
                if command != "adder" else [command]
            )
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regfile", "--suites", "bogus"])


class TestCommands:
    def test_physics(self, capsys):
        assert main(["physics", "--duty", "0.6", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "steady state" in out

    def test_adder_small_width(self, capsys):
        assert main(["adder", "--width", "8",
                     "--utilization", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "best idle pair" in out
        assert "(1, 8)" in out

    def test_regfile(self, capsys):
        assert main(["regfile", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "worst bias" in out

    def test_caches(self, capsys):
        assert main(["caches", "--suites", "office",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "LineDynamic60%" in out

    def test_penelope(self, capsys):
        assert main(["penelope", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "penelope processor" in out
