"""Sweep execution: cache lookup, then serial or multiprocessing fan-out.

The runner expands a :class:`~repro.experiments.spec.SweepSpec`, checks
each point against the :class:`~repro.experiments.store.ResultStore`,
dedupes points with identical content hashes, and executes only the
distinct misses — serially for ``workers=1``, over a
``multiprocessing`` pool otherwise.  Results come back in spec order
regardless of completion order, so parallel and serial sweeps produce
identical output (a property the test suite asserts).

Observability (PR 6): every run carries a ``run_id``; workers emit
``worker_heartbeat`` / ``point_error`` events and per-point
``sweep.queue_wait`` / ``sweep.execute`` / ``sweep.store_write`` spans
(shipped back through the pool and merged into the parent tracer ring);
and every store-backed sweep writes a provenance ``manifest.json`` next
to the store — git revision, spec hash, environment, per-point wall
times — plus an ``events.jsonl`` structured log.  All of it is inert
unless enabled (tracer off, log auto-created only with a store), and
none of it touches the computation: results are bit-identical with
observability on or off (differential-tested).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.registry import get_study
from repro.experiments.spec import ExperimentPoint, SweepSpec
from repro.experiments.store import ResultStore
from repro.metrics import MetricSet
from repro.obs.log import EventLog, new_run_id
from repro.obs.provenance import (
    build_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.trace import TRACER

#: Event-log filename written next to a sweep's result store.
EVENTS_NAME = "events.jsonl"


class PointExecutionError(RuntimeError):
    """A study function raised while executing one design point.

    Wraps the original error with the point's content hash and bound
    parameters, so a sweep failure names *which* point died instead of
    surfacing a bare worker traceback.  Picklable across pool workers
    (``__reduce__`` re-carries the structured fields).
    """

    def __init__(self, message: str, key: str = "", study: str = "",
                 params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.key = key
        self.study = study
        self.params = dict(params or {})

    @classmethod
    def wrap(cls, point: ExperimentPoint,
             cause: BaseException) -> "PointExecutionError":
        return cls(
            f"study {point.study!r} point {point.key} "
            f"({point.describe()}) failed: "
            f"{type(cause).__name__}: {cause}",
            key=point.key, study=point.study, params=point.as_dict(),
        )

    def __reduce__(self):
        return (type(self),
                (self.args[0], self.key, self.study, self.params))


def bind_spec_points(spec: SweepSpec) -> List[ExperimentPoint]:
    """Expand a spec into fully-bound, cache-keyed points.

    Binds the study's defaults into every point before hashing: the
    cache key must cover the *full* parameterisation of the
    computation, or a later change to a registry default would silently
    serve stale results.  Binding also unifies the keys of explicit and
    defaulted spellings of the same point.  Shared by the in-process
    :class:`SweepRunner` and the fabric scheduler so both plan the
    identical key set for the same spec.
    """
    study = get_study(spec.study)
    # Every study parametrizes exclusively through its defaults, so a
    # key outside them is a typo that would otherwise produce a grid of
    # byte-identical points presented as a real sweep.
    unknown = (set(spec.base) | set(spec.grid)) - set(study.defaults)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for study {spec.study!r}: "
            f"{', '.join(sorted(unknown))}; known: "
            f"{', '.join(sorted(study.defaults))}"
        )
    return [
        ExperimentPoint.from_dict(spec.study, study.bind(p.as_dict()))
        for p in spec.iter_points()
    ]


def execute_point(
    point: ExperimentPoint,
) -> Tuple[str, MetricSet, float]:
    """Run one point; module-level so worker pools can pickle it.

    Returns the study's typed :class:`MetricSet` (study sets are
    value-backed, so they pickle back from pool workers); callers
    needing the legacy flat dict take ``metric_set.flatten()``.
    Study errors surface as :class:`PointExecutionError` naming the
    point's content hash and parameters.
    """
    started = time.perf_counter()
    try:
        metric_set = get_study(point.study).execute_metrics(
            point.as_dict())
    except PointExecutionError:
        raise
    except Exception as exc:
        raise PointExecutionError.wrap(point, exc) from exc
    return point.key, metric_set, time.perf_counter() - started


@dataclass(frozen=True)
class _ObsContext:
    """Picklable observability context shipped to pool workers."""

    run_id: str
    log_path: Optional[str]
    log_level: str
    trace: bool

    def worker_log(self) -> Optional[EventLog]:
        if self.log_path is None:
            return None
        return EventLog(path=self.log_path, run_id=self.run_id,
                        level=self.log_level)


def _execute_indexed(
    task: Tuple[int, ExperimentPoint, Optional[_ObsContext]],
) -> Tuple[int, MetricSet, float, float, List[Dict[str, Any]]]:
    """Pool task keyed by slot index, so duplicate points (identical
    content hash) still fill distinct result slots.

    Besides the metric set it returns the worker-side execution start
    (epoch seconds, for parent-side queue-wait spans) and the span
    records the worker traced, to be merged into the parent's ring.
    """
    index, point, ctx = task
    if ctx is not None and ctx.trace and not TRACER.enabled:
        # spawn-started worker: globals were re-imported, re-enable.
        TRACER.enable()
    if TRACER.enabled:
        # fork-started workers inherit the parent's pre-fork ring;
        # drop it so drain() ships only this task's spans.
        TRACER.clear()
    log = ctx.worker_log() if ctx is not None else None
    if log is not None:
        log.info("worker_heartbeat", worker=os.getpid(),
                 key=point.key, point=point.describe())
    started_wall = time.time()
    _t = TRACER.begin()
    try:
        __, metric_set, elapsed = execute_point(point)
    except PointExecutionError as exc:
        if log is not None:
            log.error("point_error", key=exc.key, study=exc.study,
                      params=exc.params, error=str(exc),
                      worker=os.getpid())
        raise
    if _t is not None:
        TRACER.end(_t, "sweep.execute", key=point.key,
                   study=point.study, worker=os.getpid())
    spans = TRACER.drain() if TRACER.enabled else []
    return index, metric_set, elapsed, started_wall, spans


@dataclass
class PointResult:
    """Outcome of one design point within a sweep."""

    point: ExperimentPoint
    metrics: Dict[str, Any]
    cached: bool
    elapsed: float
    #: The typed stat tree of a freshly executed point; ``None`` for
    #: store cache hits (the JSONL rows only keep the flat view).
    metric_set: Optional[MetricSet] = None

    @property
    def params(self) -> Dict[str, Any]:
        return self.point.as_dict()

    @property
    def metric_tree(self) -> MetricSet:
        """The typed tree view of this point's metrics.

        Fresh executions return the study's own set (Ratio/Derived
        stats intact); cached results are lifted from the flat row with
        value-derived kinds, so both views always exist.
        """
        if self.metric_set is not None:
            return self.metric_set
        return MetricSet.from_flat(self.metrics)

    def value(self, name: str, default: Any = None) -> Any:
        return self.metrics.get(name, default)


@dataclass
class SweepResult:
    """All point results of one sweep, in spec expansion order."""

    spec: SweepSpec
    results: List[PointResult] = field(default_factory=list)
    wall_time: float = 0.0
    #: Provenance identity of this execution (stamped into the event
    #: log and the manifest).
    run_id: str = ""
    #: Where the provenance manifest landed; ``None`` without a store.
    manifest_path: Optional[str] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def executed(self) -> int:
        return len(self.results) - self.cache_hits

    def slowest(self) -> Optional[PointResult]:
        """The longest freshly-executed point (None if all were cached)."""
        fresh = [r for r in self.results if not r.cached]
        if not fresh:
            return None
        return max(fresh, key=lambda r: r.elapsed)

    def metrics_by_key(self) -> Dict[str, Dict[str, Any]]:
        return {r.point.key: r.metrics for r in self.results}


class SweepRunner:
    """Fans a sweep out over workers, short-circuiting cached points.

    Parameters
    ----------
    store:
        Result cache; ``None`` disables caching entirely (every point
        executes — what benchmarks want so timings stay honest).
    workers:
        Process count.  ``1`` runs in-process; higher counts use a
        ``multiprocessing`` pool and fall back to serial execution when
        the platform cannot start one.
    progress:
        Optional callback invoked with each finished
        :class:`PointResult` (CLI progress lines).
    log:
        Structured :class:`~repro.obs.log.EventLog`.  When ``None`` and
        a store is present, a file-only log is created next to the
        store (``events.jsonl``); pass an explicit log to control path,
        level or console rendering, or ``manifest=False`` plus
        ``log=EventLog()`` shapes to keep a sweep fully quiet.
    run_id:
        Provenance id; freshly generated when omitted.
    manifest:
        Write ``manifest.json`` next to the store after the run
        (ignored without a store).
    trace_path:
        Where the caller intends to export this run's trace — recorded
        in the manifest so stored results can name their trace file.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        progress: Optional[Callable[[PointResult], None]] = None,
        log: Optional[EventLog] = None,
        run_id: Optional[str] = None,
        manifest: bool = True,
        trace_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        self.progress = progress
        self.run_id = run_id or new_run_id()
        self.manifest = manifest
        self.trace_path = trace_path
        if log is None and store is not None:
            log = EventLog(path=self._events_path(), run_id=self.run_id)
        elif log is not None:
            log.run_id = self.run_id
        self.log = log

    def _events_path(self) -> Optional[str]:
        if self.store is None:
            return None
        return os.path.join(
            os.path.dirname(self.store.path) or ".", EVENTS_NAME)

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        started = time.perf_counter()
        started_wall = time.time()
        _t = TRACER.begin()
        points = bind_spec_points(spec)
        if self.log is not None:
            self.log.info("run_start", study=spec.study,
                          points=len(points), workers=self.workers,
                          axes=spec.axis_names())
        slots: List[Optional[PointResult]] = [None] * len(points)
        pending: List[Tuple[int, ExperimentPoint]] = []

        for index, point in enumerate(points):
            record = self.store.get_point(point) if self.store else None
            if record is not None:
                slots[index] = PointResult(
                    point=point, metrics=dict(record.metrics),
                    cached=True, elapsed=record.elapsed,
                )
                self._report(slots[index])
            else:
                pending.append((index, point))

        if pending:
            # Duplicate grid points (identical content hash at different
            # slots — repeated grid values, collapsed axes) used to
            # execute once per slot and double-write the store.  Execute
            # each distinct key once and fan the result back out; the
            # extra slots report cached=True since they cost nothing.
            first_slot: Dict[str, int] = {}
            duplicates: Dict[int, List[int]] = {}
            unique: List[Tuple[int, ExperimentPoint]] = []
            for index, point in pending:
                key = point.key
                if key in first_slot:
                    duplicates.setdefault(first_slot[key], []).append(index)
                else:
                    first_slot[key] = index
                    unique.append((index, point))
            for index, result in self._execute(unique):
                slots[index] = result
                if self.store is not None:
                    _tw = TRACER.begin()
                    self.store.put(result.point, result.metrics,
                                   result.elapsed)
                    if _tw is not None:
                        TRACER.end(_tw, "sweep.store_write",
                                   key=result.point.key)
                self._report(result)
                for dup_index in duplicates.get(index, ()):
                    duplicate = PointResult(
                        point=points[dup_index],
                        metrics=dict(result.metrics),
                        cached=True,
                        elapsed=result.elapsed,
                        metric_set=result.metric_set,
                    )
                    slots[dup_index] = duplicate
                    self._report(duplicate)

        assert all(slot is not None for slot in slots)
        outcome = SweepResult(
            spec=spec,
            results=[slot for slot in slots if slot is not None],
            wall_time=time.perf_counter() - started,
            run_id=self.run_id,
        )
        outcome.manifest_path = self._write_manifest(
            spec, outcome, started_wall)
        if self.log is not None:
            self.log.info("run_end", study=spec.study,
                          points=len(outcome),
                          cache_hits=outcome.cache_hits,
                          executed=outcome.executed,
                          wall_time=outcome.wall_time)
        if _t is not None:
            TRACER.end(_t, "sweep.run", study=spec.study,
                       points=len(points), workers=self.workers,
                       cache_hits=outcome.cache_hits)
        return outcome

    # ------------------------------------------------------------------
    def _write_manifest(self, spec: SweepSpec, outcome: SweepResult,
                        started_wall: float) -> Optional[str]:
        if self.store is None or not self.manifest:
            return None
        spec_payload = spec.payload()
        manifest = build_manifest(
            run_id=self.run_id,
            spec_payload=spec_payload,
            points=[{
                "key": r.point.key,
                "params": r.point.as_dict(),
                "cached": r.cached,
                "elapsed": r.elapsed,
            } for r in outcome.results],
            workers=self.workers,
            started=started_wall,
            finished=time.time(),
            store_path=self.store.path,
            trace_path=self.trace_path,
            events_path=self._events_path(),
        )
        path = manifest_path_for(self.store.path)
        try:
            write_manifest(path, manifest)
        except OSError as exc:
            # Provenance must never take the sweep down; the results
            # themselves are already safely in the store.
            if self.log is not None:
                self.log.warning("manifest_error", path=path,
                                 error=str(exc))
            return None
        return path

    # ------------------------------------------------------------------
    def _report(self, result: PointResult) -> None:
        if self.log is not None:
            self.log.info("point_done", key=result.point.key,
                          point=result.point.describe(),
                          cached=result.cached, elapsed=result.elapsed)
        if self.progress is not None:
            self.progress(result)

    def _obs_context(self) -> Optional[_ObsContext]:
        if self.log is None and not TRACER.enabled:
            return None
        return _ObsContext(
            run_id=self.run_id,
            log_path=self.log.path if self.log is not None else None,
            log_level=self.log.level if self.log is not None else "info",
            trace=TRACER.enabled,
        )

    def _execute(self, pending):
        pool = None
        if self.workers > 1 and len(pending) > 1:
            # Only pool *creation* is allowed to fall back to serial
            # (sandboxes/platforms without process support).  A failure
            # mid-iteration must propagate: falling back then would
            # re-execute points the pool already yielded, duplicating
            # store writes and progress reports.
            try:
                pool = multiprocessing.Pool(
                    processes=min(self.workers, len(pending))
                )
            except (OSError, ImportError, PermissionError):
                pool = None
        if pool is None:
            yield from self._execute_serial(pending)
            return
        with pool:
            yield from self._execute_pool(pool, pending)

    def _execute_serial(self, pending):
        log = self.log
        for index, point in pending:
            if log is not None:
                log.info("worker_heartbeat", worker=os.getpid(),
                         key=point.key, point=point.describe())
            _t = TRACER.begin()
            try:
                key, metric_set, elapsed = execute_point(point)
            except PointExecutionError as exc:
                if log is not None:
                    log.error("point_error", key=exc.key,
                              study=exc.study, params=exc.params,
                              error=str(exc), worker=os.getpid())
                raise
            if _t is not None:
                TRACER.end(_t, "sweep.execute", key=point.key,
                           study=point.study, worker=os.getpid())
            assert key == point.key
            yield index, PointResult(point=point,
                                     metrics=metric_set.flatten(),
                                     cached=False, elapsed=elapsed,
                                     metric_set=metric_set)

    def _execute_pool(self, pool, pending):
        point_by_index = dict(pending)
        ctx = self._obs_context()
        submitted = time.time()
        last_heartbeat = submitted
        tasks = [(index, point, ctx) for index, point in pending]
        try:
            for index, metric_set, elapsed, exec_started, spans in (
                pool.imap_unordered(_execute_indexed, tasks)
            ):
                last_heartbeat = time.time()
                if spans:
                    TRACER.extend(spans)
                # Queue wait = worker pickup time minus submission time:
                # the span every "why is my sweep slow" question needs
                # (workers starved vs points genuinely expensive).
                TRACER.record_span(
                    "sweep.queue_wait", submitted,
                    max(0.0, exec_started - submitted),
                    key=point_by_index[index].key,
                )
                yield index, PointResult(
                    point=point_by_index[index],
                    metrics=metric_set.flatten(),
                    cached=False, elapsed=elapsed, metric_set=metric_set,
                )
        except PointExecutionError:
            # A study raising is the *point* failing, not the pool: the
            # worker is alive and already logged point_error.
            raise
        except Exception as exc:
            # Anything else escaping imap_unordered means the pool
            # machinery itself broke — typically a worker hard-killed
            # (SIGKILL/OOM) mid-task.  Leave a structured trace naming
            # the run and the last time a worker produced anything, so
            # the fabric (or an operator) knows what to retry, then
            # re-raise: results so far are already in the store.
            if self.log is not None:
                self.log.error(
                    "worker_lost", run_id=self.run_id,
                    error=f"{type(exc).__name__}: {exc}",
                    last_heartbeat=last_heartbeat,
                    workers=self.workers,
                )
            raise


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    progress: Optional[Callable[[PointResult], None]] = None,
    **runner_options: Any,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(store=store, workers=workers,
                       progress=progress, **runner_options).run(spec)
