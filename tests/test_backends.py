"""Differential fuzz pinning the vectorized backend to the reference.

DESIGN.md section 10 makes bit-exactness mandatory: for any stream, any
geometry and any scheme, the ``"vectorized"`` engine must leave the
cache in *exactly* the state the scalar ``"reference"`` engine would —
tags, line states, LRU order, shadow marks, every stats counter and the
hit-position histogram.  These tests sweep seeded random (geometry,
scheme, stream) combinations and compare full snapshots, plus:

- ``metrics().flatten()`` identity on every registered study at small
  lengths (the acceptance criterion of the backend extraction),
- reset-then-rerun identity on the vectorized engine (the PR 2
  determinism contract extends to every backend),
- the clean ``SpecError`` naming the ``fast`` extra when
  ``backend="vectorized"`` is selected without numpy.

Everything touching the vectorized engine skips (not fails) when numpy
is not installed.
"""

import random

import pytest

from repro.config.registry import KERNEL_BACKENDS
from repro.config.specs import ProcessorSpec, SpecError
from repro.core.cache_like import (
    LineDynamicScheme,
    LineFixedScheme,
    ProtectedCache,
    SetFixedScheme,
    WayFixedScheme,
)
from repro.uarch.backends import backend_names, get_backend
from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.tlb import TLBConfig

def _require_numpy():
    return pytest.importorskip("numpy")


GEOMETRIES = [
    CacheConfig(name="g-1K-2w", size_bytes=1024, ways=2),
    CacheConfig(name="g-2K-4w", size_bytes=2 * 1024, ways=4),
    CacheConfig(name="g-8K-8w", size_bytes=8 * 1024, ways=8),
    CacheConfig(name="g-32K-4w", size_bytes=32 * 1024, ways=4),
]

SCHEME_FACTORIES = {
    "none": None,
    "set_fixed": lambda: SetFixedScheme(0.5, rotation_period=137),
    "way_fixed": lambda: WayFixedScheme(0.5, rotation_period=211),
    "line_fixed": lambda: LineFixedScheme(0.5),
    "line_dynamic": lambda: LineDynamicScheme(
        ratio=0.6, threshold=0.02, warmup=150, test_window=150,
        period=900,
    ),
}


def mixed_stream(seed: int, length: int, span_lines: int = 4096) -> list:
    """Hot-set plus uniform tail, the shape real traces have."""
    rng = random.Random(seed)
    hot = [rng.randrange(span_lines // 8) * 64 for __ in range(24)]
    out = []
    for __ in range(length):
        if rng.random() < 0.55:
            out.append(rng.choice(hot))
        else:
            out.append(rng.randrange(span_lines) * 64)
    return out


def snapshot(cache: Cache) -> dict:
    """Full observable + internal state of a cache, order-sensitive."""
    stats = cache.stats
    return {
        "tags": [list(row) for row in cache._tags],
        "state": [list(row) for row in cache._state],
        "lru_order": [list(row) for row in cache._lru_order],
        "lru_pos": [list(row) for row in cache._lru_pos],
        "shadow": [list(row) for row in cache._shadow],
        "inverted": cache.inverted_count(),
        "shadow_lines": cache.shadow_count(),
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "shadow_hits": stats.shadow_hits,
        "inversions": stats.inversions,
        "refills_of_inverted": stats.refills_of_inverted,
        "hit_way_position": dict(stats.hit_way_position),
        "flatten": cache.metrics().flatten(),
    }


class TestBackendRegistry:
    def test_names_are_stable(self):
        assert backend_names() == ["reference", "vectorized"]
        assert KERNEL_BACKENDS.names() == ["reference", "vectorized"]

    def test_unknown_backend_is_a_spec_error(self):
        with pytest.raises(SpecError, match="unknown kernel backend"):
            get_backend("simd512")

    def test_backends_are_singletons(self):
        assert get_backend("reference") is get_backend("reference")

    def test_processor_spec_validates_backend(self):
        with pytest.raises(SpecError, match="unknown kernel backend"):
            ProcessorSpec(backend="cuda")

    def test_backend_flows_into_core_config(self):
        assert ProcessorSpec().to_core_config().backend == "reference"

    def test_reference_builds_scalar_types(self):
        engine = get_backend("reference")
        cache = engine.make_cache(GEOMETRIES[0])
        assert type(cache) is Cache
        tlb = engine.make_tlb(TLBConfig(name="t", entries=64))
        assert tlb.translate(0) is False


class TestMissingNumpy:
    def test_vectorized_without_numpy_names_the_extra(self, monkeypatch):
        import repro.uarch.backends as backends
        import repro.uarch.backends.vectorized as vectorized

        monkeypatch.setattr(vectorized, "np", None)
        monkeypatch.setattr(backends, "_INSTANCES", {})
        with pytest.raises(SpecError, match="fast"):
            get_backend("vectorized")
        with pytest.raises(SpecError, match="requires numpy"):
            vectorized.VectorizedBackend()


class TestDifferentialFuzz:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_reference(self, scheme_name, seed):
        _require_numpy()
        rng = random.Random(seed * 7919 + hash(scheme_name) % 1000)
        for trial in range(3):
            config = GEOMETRIES[rng.randrange(len(GEOMETRIES))]
            length = rng.choice([0, 1, 37, 700, 3000])
            stream = mixed_stream(rng.randrange(1 << 30), length)
            factory = SCHEME_FACTORIES[scheme_name]
            if factory is None:
                ref = get_backend("reference").make_cache(config)
                vec = get_backend("vectorized").make_cache(config)
                ref_hits = ref.replay(stream)
                vec_hits = vec.replay(stream)
                ref_cache, vec_cache = ref, vec
            else:
                ref = ProtectedCache(
                    get_backend("reference").make_cache(config),
                    factory(), seed=seed,
                )
                vec = ProtectedCache(
                    get_backend("vectorized").make_cache(config),
                    factory(), seed=seed,
                )
                ref_hits = ref.replay(stream)
                vec_hits = vec.replay(stream)
                ref_cache, vec_cache = ref.cache, vec.cache
            assert ref_hits == vec_hits, (scheme_name, seed, trial)
            assert snapshot(ref_cache) == snapshot(vec_cache), (
                scheme_name, seed, trial, config.name, length,
            )

    @pytest.mark.parametrize("scheme_name", ["set_fixed", "way_fixed"])
    def test_chunk_boundary_rotations(self, scheme_name):
        """Rotation periods straddling the 65536-address batch chunk."""
        _require_numpy()
        config = CacheConfig(name="b-4K-4w", size_bytes=4 * 1024, ways=4)
        scheme_cls = (SetFixedScheme if scheme_name == "set_fixed"
                      else WayFixedScheme)
        stream = mixed_stream(5, 70_000, span_lines=2048)
        for period in (1, 2, 65_536, 65_537, 9_999):
            ref = ProtectedCache(
                get_backend("reference").make_cache(config),
                scheme_cls(0.5, rotation_period=period), seed=3,
            )
            vec = ProtectedCache(
                get_backend("vectorized").make_cache(config),
                scheme_cls(0.5, rotation_period=period), seed=3,
            )
            assert ref.replay(stream) == vec.replay(stream), period
            assert snapshot(ref.cache) == snapshot(vec.cache), period

    def test_vectorized_reset_reproduces_first_run(self):
        _require_numpy()
        config = GEOMETRIES[1]
        stream = mixed_stream(11, 2500)
        protected = ProtectedCache(
            get_backend("vectorized").make_cache(config),
            SetFixedScheme(0.5, rotation_period=97), seed=5,
        )
        protected.replay(stream)
        first = snapshot(protected.cache)
        protected.reset()
        protected.replay(stream)
        assert snapshot(protected.cache) == first

    def test_plain_vectorized_reset_identity(self):
        _require_numpy()
        cache = get_backend("vectorized").make_cache(GEOMETRIES[2])
        stream = mixed_stream(13, 2000)
        cache.replay(stream)
        first = snapshot(cache)
        cache.reset()
        cache.replay(stream)
        assert snapshot(cache) == first

    def test_declines_unbatchable_schemes_without_consuming(self):
        """LineFixed replay goes through the generic scalar path; the
        engine must not eat any addresses when it declines."""
        _require_numpy()
        cache = get_backend("vectorized").make_cache(GEOMETRIES[0])
        stream = iter(mixed_stream(17, 500))
        assert cache.replay_scheme(LineFixedScheme(0.5), stream) is None
        assert len(list(stream)) == 500


class TestStudyDifferential:
    """Acceptance criterion: every registered study's flatten() is
    bit-identical under ``"reference"`` and ``"vectorized"``."""

    def _point(self, name):
        from repro.experiments.registry import get_study

        study = get_study(name)
        params = dict(study.defaults)
        # Small lengths keep the whole matrix fast; identity must hold
        # at any length, so the value itself is arbitrary.
        if "length" in params:
            params["length"] = min(int(params["length"]), 1500)
        return study, params

    @pytest.mark.parametrize("name", [
        "caches", "invert_ratio", "victim_policy", "regfile",
        "vmin_power", "multiprog", "penelope",
    ])
    def test_flatten_identity(self, name):
        _require_numpy()
        study, params = self._point(name)
        ref = study.run({**params, "backend": "reference"}).flatten()
        vec = study.run({**params, "backend": "vectorized"}).flatten()
        assert ref == vec, name

    def test_all_studies_covered(self):
        """The matrix above goes stale silently if a study is added."""
        from repro.experiments.registry import get_study, study_names

        assert set(study_names()) == {
            "caches", "invert_ratio", "victim_policy", "regfile",
            "vmin_power", "multiprog", "penelope",
        }
        for name in study_names():
            study = get_study(name)
            assert study.defaults.get("backend") == "reference", name
            assert study.spec_paths.get("backend") == \
                "processor.backend", name


class TestNbtiKernels:
    def test_stress_relax_match_scalar_model(self):
        _require_numpy()
        from repro.nbti.physics import ReactionDiffusionModel

        ref_engine = get_backend("reference")
        vec_engine = get_backend("vectorized")
        nits = [0.0, 0.1, 0.5, 0.93, 1.0]
        for duration in (0.5, 1e3, 1e6):
            expected = []
            for nit in nits:
                model = ReactionDiffusionModel(nit=nit)
                model.stress(duration)
                model.relax(duration / 3)
                expected.append(model.nit)
            k_s = ReactionDiffusionModel().effective_k_stress
            k_r = ReactionDiffusionModel().k_relax
            for engine in (ref_engine, vec_engine):
                stressed = engine.nbti_stress(nits, 1.0, k_s, duration)
                relaxed = engine.nbti_relax(stressed, k_r, duration / 3)
                assert relaxed == expected, engine.name

    def test_steady_state_fill_many(self):
        _require_numpy()
        from repro.nbti.physics import steady_state_fill

        duties = [0.0, 0.1, 0.5, 0.9, 1.0]
        expected = [steady_state_fill(d) for d in duties]
        for name in ("reference", "vectorized"):
            assert get_backend(name).steady_state_fill_many(duties) == \
                expected, name
        assert get_backend("vectorized").steady_state_fill_many([]) == []

    def test_steady_state_fill_rejects_bad_duty(self):
        _require_numpy()
        with pytest.raises(ValueError, match="1.5"):
            get_backend("vectorized").steady_state_fill_many([0.2, 1.5])
