"""Plain-text renderers for the reproduced tables and figures."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.metrics import NUMERIC_KINDS, kind_of_value, payload_deltas


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    columns = len(headers)
    for row in cells:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[object, float],
    title: str = "",
    percent: bool = True,
    bar_width: int = 40,
) -> str:
    """Render a labelled value series with ASCII bars (figure stand-in)."""
    if not series:
        raise ValueError("series is empty")
    peak = max(abs(v) for v in series.values()) or 1.0
    lines = [title] if title else []
    for label, value in series.items():
        bar = "#" * int(round(bar_width * abs(value) / peak))
        shown = f"{value * 100:6.2f}%" if percent else f"{value:8.4f}"
        lines.append(f"{str(label):>24s} {shown} {bar}")
    return "\n".join(lines)


def format_interval_report(
    payload: Mapping[str, object],
    metrics: Sequence[str] = (),
    bar_width: int = 40,
) -> str:
    """Render an interval-telemetry payload as per-metric bar series.

    ``payload`` is an :meth:`repro.metrics.telemetry.IntervalTelemetry.
    to_payload` dict (possibly JSON round-tripped from a benchmark
    artefact); each chosen stat renders one :func:`format_series` block
    of its per-interval deltas.  Default selection: every cumulative
    (counter) path with a nonzero delta somewhere — the stats whose
    interval story differs from their totals.
    """
    labels, deltas = payload_deltas(payload)
    schema = payload.get("schema") or {}
    available = [
        path for path in deltas[0]
        if all(kind_of_value(d[path]) in NUMERIC_KINDS for d in deltas)
    ]
    chosen = list(metrics)
    if chosen:
        unknown = [m for m in chosen if m not in available]
        if unknown:
            raise ValueError(
                f"unknown or non-numeric metric(s) "
                f"{', '.join(unknown)}; renderable: "
                f"{', '.join(available) or '(none)'}"
            )
    else:
        chosen = [
            path for path in available
            if schema.get(path, {}).get("kind") == "counter"
            and any(d[path] for d in deltas)
        ] or available
    blocks = []
    for path in chosen:
        series = {label: float(delta[path])
                  for label, delta in zip(labels, deltas)}
        blocks.append(format_series(series, title=path, percent=False,
                                    bar_width=bar_width))
    return "\n\n".join(blocks)


def format_histogram(
    values: Sequence[float],
    bins: int = 10,
    title: str = "",
    bar_width: int = 40,
) -> str:
    """Render a simple ASCII histogram of a value distribution."""
    if not values:
        raise ValueError("values is empty")
    if bins <= 0:
        raise ValueError("bins must be positive")
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts) or 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = low + span * i / bins
        right = low + span * (i + 1) / bins
        bar = "#" * int(round(bar_width * count / peak))
        lines.append(f"[{left:9.4f},{right:9.4f}) {count:6d} {bar}")
    return "\n".join(lines)
