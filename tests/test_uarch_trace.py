"""Tests for the trace container utilities."""

import pytest

from repro.uarch.trace import Trace, TraceStats, concatenate
from repro.uarch.uop import Uop, UopClass
from repro.workloads import TraceGenerator


def make_trace(n=10, suite="test"):
    trace = Trace(name="t", suite=suite)
    for i in range(n):
        trace.append(Uop(seq=i, uop_class=UopClass.ALU, dst=1))
    return trace


class TestTrace:
    def test_len_iter_getitem(self):
        trace = make_trace(5)
        assert len(trace) == 5
        assert [u.seq for u in trace] == list(range(5))
        assert trace[2].seq == 2
        assert [u.seq for u in trace[1:3]] == [1, 2]

    def test_sample(self):
        trace = make_trace(10)
        sampled = trace.sample(3)
        assert [u.seq for u in sampled] == [0, 3, 6, 9]
        assert sampled.suite == trace.suite
        assert "@3" in sampled.name

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            make_trace().sample(0)

    def test_stats(self):
        trace = Trace(name="t", suite="s")
        trace.append(Uop(seq=0, uop_class=UopClass.ALU, dst=1))
        trace.append(Uop(seq=1, uop_class=UopClass.LOAD, dst=2,
                         address=64))
        stats = trace.stats()
        assert isinstance(stats, TraceStats)
        assert stats.length == 2
        assert stats.fraction(UopClass.ALU) == 0.5
        assert stats.memory_fraction == 0.5

    def test_empty_stats(self):
        stats = Trace(name="t", suite="s").stats()
        assert stats.length == 0
        assert stats.fraction(UopClass.ALU) == 0.0


class TestConcatenate:
    def test_renumbers_sequences(self):
        merged = concatenate([make_trace(3), make_trace(3)])
        assert [u.seq for u in merged] == list(range(6))

    def test_preserves_payload(self):
        a = TraceGenerator(seed=1).generate("office", length=50)
        b = TraceGenerator(seed=1).generate("office", length=50,
                                            trace_index=1)
        merged = concatenate([a, b], name="pair")
        assert merged.name == "pair"
        assert len(merged) == 100
        assert merged[0].opcode == a[0].opcode
        assert merged[50].opcode == b[0].opcode

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])
