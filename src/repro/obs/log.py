"""Structured run logging: a JSONL event stream plus a console renderer.

Every record is one self-contained JSON object::

    {"ts": 1690000000.0, "run_id": "3f9c2a1b04de", "span_id": "1a2f.3",
     "level": "info", "event": "point_done",
     "payload": {"key": "ab12...", "cached": false, "elapsed": 0.42}}

Records are appended with the PR 4 store discipline — one ``os.write``
on an ``O_APPEND`` fd per record — so concurrent sweep workers (threads
*or* processes) can log to the same file without ever interleaving
partial lines; a threaded test asserts this.  ``span_id`` is filled
from the calling thread's innermost open tracer span, which is how a
log line links back to the execution trace.

The console renderer (:func:`render_event`) is the human view of the
same stream — what the CLI shows instead of ad-hoc ``print``\\ s — and
``repro trace events`` replays a stored stream through it.
"""

from __future__ import annotations

import json
import os
import sys
import time
import uuid
from typing import Any, Dict, IO, List, Optional

from repro.obs.trace import TRACER

#: Numeric severities (subset of stdlib logging, by design: the stream
#: is an event log, not a debug firehose).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}


def new_run_id() -> str:
    """A short, collision-resistant id naming one sweep/run."""
    return uuid.uuid4().hex[:12]


def render_event(record: Dict[str, Any]) -> str:
    """One human-readable line for a structured event record."""
    ts = record.get("ts", 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    millis = int((ts % 1.0) * 1000)
    level = str(record.get("level", "info")).upper()
    payload = record.get("payload") or {}
    detail = " ".join(f"{key}={_compact(value)}"
                      for key, value in payload.items())
    line = (f"{clock}.{millis:03d} {level:<7} "
            f"{record.get('event', '?')}")
    return f"{line}  {detail}" if detail else line


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str):
        return value if len(value) <= 40 else value[:37] + "..."
    return json.dumps(value, sort_keys=True, default=str)


class EventLog:
    """Leveled, structured event sink: JSONL file and/or console.

    Parameters
    ----------
    path:
        JSONL destination; ``None`` keeps the log console-only (or
        fully inert when ``console`` is also off).
    run_id:
        Stamped into every record so multi-run files stay separable.
    level:
        Minimum severity that is recorded.
    console:
        When true, every recorded event is also rendered human-readably
        to ``stream`` (default ``sys.stderr``).
    """

    def __init__(self, path: Optional[str] = None,
                 run_id: Optional[str] = None, level: str = "info",
                 console: bool = False,
                 stream: Optional[IO[str]] = None) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; choose from "
                f"{', '.join(sorted(LEVELS, key=LEVELS.get))}"
            )
        self.path = path
        self.run_id = run_id or new_run_id()
        self.level = level
        self.console = console
        self.stream = stream
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def emit(self, event: str, level: str = "info",
             **payload: Any) -> Optional[Dict[str, Any]]:
        """Record one event; returns the record, or ``None`` if filtered."""
        if LEVELS.get(level, 0) < LEVELS[self.level]:
            return None
        record = {
            "ts": time.time(),
            "run_id": self.run_id,
            "span_id": TRACER.current_span_id(),
            "level": level,
            "event": event,
            "payload": payload,
        }
        if self.path:
            # One O_APPEND fd + one os.write per record (the PR 4 store
            # pattern): concurrent writers append whole lines atomically.
            data = (json.dumps(record, sort_keys=True, default=str)
                    + "\n").encode("utf-8")
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                written = os.write(fd, data)
            finally:
                os.close(fd)
            if written != len(data):
                raise OSError(
                    f"short write to {self.path}: {written} of "
                    f"{len(data)} bytes"
                )
        if self.console:
            print(render_event(record),
                  file=self.stream or sys.stderr)
        return record

    # Severity shorthands ------------------------------------------------
    def debug(self, event: str, **payload: Any):
        return self.emit(event, level="debug", **payload)

    def info(self, event: str, **payload: Any):
        return self.emit(event, level="info", **payload)

    def warning(self, event: str, **payload: Any):
        return self.emit(event, level="warning", **payload)

    def error(self, event: str, **payload: Any):
        return self.emit(event, level="error", **payload)


def read_events(path: str, level: Optional[str] = None,
                run_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Load an event-log file, optionally filtered by level / run id.

    Corrupt lines are skipped (the same tolerance as the result store:
    a crashed writer must not take the whole log down with it).
    """
    floor = LEVELS[level] if level else 0
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "event" not in record:
                continue
            if LEVELS.get(record.get("level", "info"), 0) < floor:
                continue
            if run_id and record.get("run_id") != run_id:
                continue
            events.append(record)
    return events
