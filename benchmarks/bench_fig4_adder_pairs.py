"""Figure 4: narrow transistors with 100% zero-signal probability for
every round-robin pair of the eight synthetic adder inputs.

Shape target: pair 1+8 (<0,0,0> + <1,1,1>) is the minimum; only wide
PMOS remain fully stressed under it.
"""

from repro.analysis import format_series
from repro.core.combinational import search_best_pair

from conftest import write_result


def test_fig4_input_pair_search(benchmark, adder32):
    result = benchmark.pedantic(
        search_best_pair, args=(adder32,), rounds=1, iterations=1
    )
    fractions = result.fractions()
    assert result.best_pair == (1, 8)
    best_report = result.reports[(1, 8)]
    assert best_report.narrow_fully_stressed == 0
    assert best_report.wide_fully_stressed > 0

    series = {
        f"{a}+{b}": fractions[(a, b)]
        for (a, b) in sorted(fractions)
    }
    text = format_series(
        series,
        title=("Figure 4 — % narrow transistors with 100% zero-signal "
               "probability (w.r.t. total transistors)"),
    )
    text += (
        f"\nbest pair: {result.best_pair} "
        f"(paper: 1+8 = <0,0,0> and <1,1,1>); "
        f"wide PMOS fully stressed under it: "
        f"{best_report.wide_fully_stressed}"
    )
    write_result("fig4_adder_pairs.txt", text)
