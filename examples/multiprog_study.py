#!/usr/bin/env python
"""Multiprogram interference study.

N programs time-share one protected DL0: each Table 1 suite contributes
a lazy address stream and the streams interleave slice by slice (see
``repro.workloads.multiprog``) before replaying through the
invalidate-and-invert schemes.  The study compares

- how much the interleaving *policy* (round-robin vs random slices)
  changes the interference a scheme sees, and
- how the performance loss scales with the number of co-running
  programs sharing the cache.

Everything streams: no address list is ever materialised, so the same
script scales to paper-length traces.  Driven through the declarative
API — the workload's ``interleave``/``slice_length`` fields feed the
``multiprog`` study's policy knobs; ``examples/multiprog_study.json``
is the equivalent config for ``repro run``.

Run:  python examples/multiprog_study.py [--workers N]
"""

import argparse

from repro import api
from repro.analysis import format_table
from repro.config import StudySpec, WorkloadSpec

LENGTH = 4000

#: Program mixes of growing size; duplicates are distinct programs.
MIXES = (
    ("specint2000",),
    ("specint2000", "office"),
    ("specint2000", "office", "multimedia", "server"),
)


def spec_for(suites, policy: str) -> StudySpec:
    return StudySpec(
        "multiprog",
        workload=WorkloadSpec(
            suites=suites, length=LENGTH, seed=7,
            interleave=policy, slice_length=64,
        ),
        sweep={"protection.dl0.params.ratio": [0.4, 0.5, 0.6]},
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    rows = []
    for suites in MIXES:
        for policy in ("round_robin", "random_slice"):
            outcome = api.run_study(spec_for(suites, policy),
                                    workers=args.workers)
            for result in outcome:
                rows.append([
                    str(len(suites)),
                    policy,
                    result.metrics["scheme_name"],
                    f"{result.metrics['baseline_miss_rate']:.2%}",
                    f"{result.metrics['scheme_miss_rate']:.2%}",
                    f"{result.metrics['mean_loss']:.2%}",
                ])

    print(format_table(
        ["programs", "policy", "scheme", "base miss", "scheme miss",
         "loss"],
        rows,
        title=(f"Multiprogram interference on a protected 16K/8w DL0 "
               f"({LENGTH} refs per program)"),
    ))
    print("\nInterference moves the baseline: small-working-set "
          "co-runners dilute the")
    print("miss rate, while crowded mixes collide and amplify every "
          "capacity the")
    print("inversion schemes take away — losses the single-program "
          "Table 3 runs never see.")


if __name__ == "__main__":
    main()
