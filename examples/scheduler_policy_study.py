#!/usr/bin/env python
"""Scheduler policy study (Section 4.5 / Figure 8).

Shows the full flow: profile a subset of traces, derive the per-bit
technique assignment via the Figure 3 casuistic, apply it to evaluation
traces, and compare against both the baseline and the paper's published
classification.

Run:  python examples/scheduler_policy_study.py
"""

from collections import Counter

import numpy as np

from repro import api
from repro.analysis import merge_bias_arrays
from repro.core.memory_like import (
    PAPER_SCHEDULER_POLICY,
    SchedulerProfiler,
    SchedulerProtector,
    derive_scheduler_policy,
)
from repro.workloads import TraceGenerator

PROFILE_SUITES = ["specint2000", "multimedia"]
EVAL_SUITES = ["office", "server", "kernels"]
LENGTH = 5000


def main() -> None:
    generator = TraceGenerator(seed=17)

    print("== Step 1: profiling (the paper uses 100 of 531 traces) ==")
    profiler = SchedulerProfiler()
    occupancies = []
    for suite in PROFILE_SUITES:
        trace = generator.generate(suite, length=LENGTH)
        result = api.build_core(hooks=profiler).run(trace)
        occupancies.append(result.scheduler.occupancy)
    occupancy = float(np.mean(occupancies))
    print(f"  profiled {profiler.fills} dispatches, "
          f"occupancy {occupancy:.1%} (paper: 63%)")

    policy = derive_scheduler_policy(profiler, occupancy)
    print("\n== Step 2: derived per-field techniques ==")
    for field, directives in policy.items():
        counts = Counter(d.technique.value for d in directives)
        ks = sorted({round(d.k, 2) for d in directives
                     if d.technique.value.endswith("-k")})
        suffix = f" (K={ks})" if ks else ""
        print(f"  {field:10s} {dict(counts)}{suffix}")

    print("\n== Step 3: evaluation ==")
    def evaluate(hooks_factory):
        biases, cycles = [], []
        for suite in EVAL_SUITES:
            trace = generator.generate(suite, length=LENGTH,
                                       trace_index=1)
            hooks = hooks_factory()
            core = api.build_core(hooks=hooks)
            result = core.run(trace)
            biases.append(result.scheduler.flattened_bias())
            cycles.append(result.cycles)
        merged = merge_bias_arrays(biases, weights=cycles)
        return float(np.max(np.maximum(merged, 1 - merged)))

    base = evaluate(lambda: None)
    derived = evaluate(lambda: SchedulerProtector(policy))
    paper = evaluate(lambda: SchedulerProtector(PAPER_SCHEDULER_POLICY))
    print(f"  worst bit bias: baseline     {base:.1%}  (paper ~100%)")
    print(f"  worst bit bias: derived K    {derived:.1%}  (paper 63.2%)")
    print(f"  worst bit bias: paper's Ks   {paper:.1%}  "
          f"(their Ks were fit to their traces)")


if __name__ == "__main__":
    main()
