"""Issue ports and adder-allocation policies.

Section 4.3 of the paper reports adder utilisation under two allocation
policies: "if additions are allocated to adders with priorities, the
utilization of the adders ranges between 11% and 30%, but if additions
are distributed uniformly across adders, the utilization of adders is
21%".  :class:`AdderPool` models both policies, tracks per-adder
utilisation, and keeps a reservoir sample of the operand vectors each
adder saw — the "inputs sampled from the traces" that drive the aging
simulation of Figures 4 and 5.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.uarch.uop import Uop

#: (input_a, input_b, carry_in) as presented to an adder.
AdderVector = Tuple[int, int, int]


class AdderPolicy(enum.Enum):
    """How additions are distributed across the adder-equipped ports."""

    #: Always pick the lowest-numbered free adder (skewed utilisation).
    PRIORITY = "priority"
    #: Round-robin across adders (uniform utilisation).
    UNIFORM = "uniform"


@dataclass(slots=True)
class AdderSlot:
    """One adder instance bound to an issue port."""

    index: int
    busy_until: float = 0.0
    busy_cycles: float = 0.0
    operations: int = 0


class AdderPool:
    """The integer/AGU adders of the issue ports.

    Parameters
    ----------
    n_adders:
        One adder per integer-ALU and address-generation port (Section
        4.1: "there is an adder in each integer and address generation
        port").
    policy:
        Allocation policy (see :class:`AdderPolicy`).
    sample_capacity:
        Reservoir size for sampled operand vectors, per adder.
    """

    def __init__(
        self,
        n_adders: int = 4,
        policy: AdderPolicy = AdderPolicy.UNIFORM,
        sample_capacity: int = 256,
        seed: int = 0,
    ) -> None:
        if n_adders <= 0:
            raise ValueError("n_adders must be positive")
        if sample_capacity <= 0:
            raise ValueError("sample_capacity must be positive")
        self.policy = policy
        self.sample_capacity = sample_capacity
        self._n_adders = n_adders
        self._seed = seed
        self._init_run_state()

    def _init_run_state(self) -> None:
        n_adders = self._n_adders
        self.adders = [AdderSlot(i) for i in range(n_adders)]
        self._samples: List[List[AdderVector]] = [[] for _ in range(n_adders)]
        self._seen: List[int] = [0] * n_adders
        self._rng = random.Random(self._seed)
        self._rr = 0
        self._horizon = 0.0

    def reset(self) -> None:
        """Restore the freshly-constructed state, re-seeding the RNG."""
        self._init_run_state()

    # ------------------------------------------------------------------
    def issue(self, uop: Uop, cycle: float, duration: float = 1.0) -> Optional[int]:
        """Issue an adder-using uop at ``cycle``; returns the adder index.

        Returns None when every adder is busy (the caller retries next
        cycle).  The chosen adder records utilisation and samples the
        operand vector.
        """
        adder = self._select(cycle)
        if adder is None:
            return None
        adder.busy_until = cycle + duration
        adder.busy_cycles += duration
        adder.operations += 1
        self._sample(adder.index, uop.adder_operands())
        self._horizon = max(self._horizon, cycle + duration)
        return adder.index

    def _select(self, cycle: float) -> Optional[AdderSlot]:
        if self.policy is AdderPolicy.PRIORITY:
            for adder in self.adders:
                if adder.busy_until <= cycle:
                    return adder
            return None
        # UNIFORM: rotate the starting point each issue.
        n = len(self.adders)
        for offset in range(n):
            adder = self.adders[(self._rr + offset) % n]
            if adder.busy_until <= cycle:
                self._rr = (adder.index + 1) % n
                return adder
        return None

    def _sample(self, index: int, vector: AdderVector) -> None:
        """Reservoir-sample the operand stream of one adder."""
        self._seen[index] += 1
        samples = self._samples[index]
        if len(samples) < self.sample_capacity:
            samples.append(vector)
            return
        slot = self._rng.randrange(self._seen[index])
        if slot < self.sample_capacity:
            samples[slot] = vector

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, total_cycles: Optional[float] = None) -> List[float]:
        """Busy fraction per adder."""
        horizon = total_cycles if total_cycles is not None else self._horizon
        if horizon <= 0.0:
            return [0.0] * len(self.adders)
        return [min(1.0, a.busy_cycles / horizon) for a in self.adders]

    def utilization_range(
        self, total_cycles: Optional[float] = None
    ) -> Tuple[float, float]:
        """(min, max) per-adder utilisation — the paper's 11%-30% span."""
        utils = self.utilization(total_cycles)
        return min(utils), max(utils)

    def mean_utilization(self, total_cycles: Optional[float] = None) -> float:
        utils = self.utilization(total_cycles)
        return sum(utils) / len(utils)

    def sampled_vectors(self, index: int) -> Sequence[AdderVector]:
        """Reservoir sample of operand vectors seen by one adder."""
        if not 0 <= index < len(self.adders):
            raise IndexError(f"adder index out of range: {index}")
        return tuple(self._samples[index])

    def all_sampled_vectors(self) -> Sequence[AdderVector]:
        return tuple(v for samples in self._samples for v in samples)
