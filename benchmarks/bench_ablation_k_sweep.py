"""Ablation: K sweep for the ALL1-K% technique.

The paper fixes K per field by profiling (95/75/95/50/50/60%); this
sweep shows the bias of a representative imbalanced field (flags) as K
varies, with the profiling-derived K landing nearest 50% balance.
"""


import pytest

np = pytest.importorskip("numpy")

from repro.core.memory_like import SchedulerProtector
from repro.core.policy import BitDirective, Technique
from repro.uarch import TraceDrivenCore
from repro.uarch.uop import SCHEDULER_LAYOUT
from repro.workloads import TraceGenerator

from conftest import SMOKE, scaled, write_result
from repro.analysis import format_table

K_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)


def policy_with_flags_k(k):
    """A policy repairing only the flags field at duty K."""
    policy = {
        name: [BitDirective(Technique.SELF_BALANCED)] * width
        for name, width in SCHEDULER_LAYOUT.fields().items()
    }
    policy["valid"] = [BitDirective(Technique.UNPROTECTED)]
    policy["flags"] = [
        BitDirective(Technique.ALL1_K, k)
        for __ in range(SCHEDULER_LAYOUT.flags)
    ]
    return policy


def sweep(trace):
    rows = []
    biases = []
    for k in K_VALUES:
        protector = SchedulerProtector(policy_with_flags_k(k))
        result = TraceDrivenCore(hooks=protector).run(trace)
        bias = float(np.max(result.scheduler.field_bias["flags"]))
        rows.append([f"{k:.0%}", f"{bias:.1%}",
                     f"{abs(bias - 0.5):.1%}"])
        biases.append(bias)
    return rows, biases


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(seed=66).generate("specint2000",
                                           length=scaled(6000))


def test_ablation_k_sweep(benchmark, trace):
    rows, biases = benchmark.pedantic(
        sweep, args=(trace,), rounds=1, iterations=1
    )
    if not SMOKE:
        # Writing "1" more often monotonically lowers the bias to 0.
        assert biases == sorted(biases, reverse=True)
        # K=1 (ALL1) brings the flags' near-100% baseline bias the
        # closest to balance (flags are almost always 0 when busy).
        assert biases[-1] == min(biases)
    text = format_table(
        ["K", "worst flags bias to 0", "distance from balance"],
        rows,
        title="Ablation — ALL1-K% duty sweep on the flags field",
    )
    write_result("ablation_k_sweep.txt", text)
