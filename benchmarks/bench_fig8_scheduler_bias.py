"""Figure 8: scheduler bit bias, baseline vs {ALL1, ALL1-K%, ISV}.

Paper: worst-case bias falls from ~100% to 63.2%; K values are derived
from profiling traces (100 of 531) and applied to the rest.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import format_table, merge_bias_arrays
from repro.core.memory_like import (
    SchedulerProfiler,
    SchedulerProtector,
    derive_scheduler_policy,
)
from repro.uarch import TraceDrivenCore

from conftest import SMOKE, write_result


def run_protected(workload, policy):
    return [
        TraceDrivenCore(hooks=SchedulerProtector(policy)).run(trace)
        for trace in workload
    ]


def _merged_worst(results):
    merged = merge_bias_arrays(
        [r.scheduler.flattened_bias() for r in results],
        weights=[r.cycles for r in results],
    )
    return float(np.max(np.maximum(merged, 1.0 - merged))), merged


def test_fig8_scheduler_bias(benchmark, workload, baseline_results):
    # Profiling step on ~20% of the workload (the paper: 100/531 traces).
    profiler = SchedulerProfiler()
    profiling = TraceDrivenCore(hooks=profiler)
    occupancies = []
    for trace in workload[:2]:
        occupancies.append(profiling.run(trace).scheduler.occupancy)
        profiling = TraceDrivenCore(hooks=profiler)
    policy = derive_scheduler_policy(profiler, float(np.mean(occupancies)))

    protected = benchmark.pedantic(
        run_protected, args=(workload, policy), rounds=1, iterations=1
    )
    base = list(baseline_results.values())
    base_worst, __ = _merged_worst(base)
    prot_worst, merged = _merged_worst(protected)
    occupancy = float(np.mean(
        [r.scheduler.occupancy for r in base]
    ))
    port_free = float(np.mean(
        [r.scheduler.port_free_fraction for r in protected]
    ))
    balanced_bits = float(np.mean(
        np.abs(merged - 0.5) < 0.1
    ))

    if not SMOKE:
        assert base_worst > 0.95
        assert prot_worst < base_worst

    rows = [
        ["worst bit bias (baseline)", f"{base_worst:.1%}", "~100%"],
        ["worst bit bias (protected)", f"{prot_worst:.1%}", "63.2%"],
        ["bits within 10% of balance", f"{balanced_bits:.1%}", "~90%"],
        ["scheduler occupancy", f"{occupancy:.1%}", "63%"],
        ["allocate ports free", f"{port_free:.1%}", "77%"],
    ]
    write_result(
        "fig8_scheduler_bias.txt",
        format_table(["statistic", "measured", "paper"], rows,
                     title="Figure 8 — scheduler bit-cell balancing"),
    )
