"""Named study factories: map an experiment point to measurements.

Each study is a module-level function (picklable, so sweeps can fan out
over ``multiprocessing`` workers) that takes the point's parameter dict
and returns a flat dict of JSON-serialisable metrics.  Studies wrap the
repo's existing entry points — :class:`~repro.uarch.core.TraceDrivenCore`,
:func:`~repro.core.cache_like.run_cache_study`, and
:class:`~repro.core.penelope.PenelopeProcessor` — they add no modelling
of their own.

Generated traces and address streams are memoised per worker process
(:func:`cached_trace` / :func:`cached_address_stream`), so points that
share a workload axis only pay generation once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.core.cache_like import LineFixedScheme as _LineFixedScheme
from repro.workloads import suite_names

# ----------------------------------------------------------------------
# Per-worker workload caches
# ----------------------------------------------------------------------
_CACHE_CAP = 32

_TRACE_CACHE: Dict[Tuple[str, int, int], Any] = {}
_STREAM_CACHE: Dict[Tuple[str, int, int], Any] = {}
_RF_BIAS_CACHE: Dict[Tuple[str, int, int, float], Tuple[float, float, float]] = {}


def _evict(cache: Dict) -> None:
    while len(cache) > _CACHE_CAP:
        cache.pop(next(iter(cache)))


def cached_trace(suite: str, length: int, seed: int):
    """One generated trace per (suite, length, seed) per worker."""
    from repro.workloads import TraceGenerator

    key = (suite, length, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = TraceGenerator(seed=seed).generate(
            suite, length=length
        )
        _evict(_TRACE_CACHE)
    return _TRACE_CACHE[key]


def cached_address_stream(suite: str, length: int, seed: int):
    """One generated address stream per (suite, length, seed) per worker."""
    from repro.workloads import generate_address_stream

    key = (suite, length, seed)
    if key not in _STREAM_CACHE:
        _STREAM_CACHE[key] = generate_address_stream(
            suite, length=length, seed=seed
        )
        _evict(_STREAM_CACHE)
    return _STREAM_CACHE[key]


def cached_rf_biases(
    suite: str, length: int, seed: int, sample_period: float
) -> Tuple[float, float, float]:
    """(baseline bias, ISV bias, free fraction) of the INT register file.

    Memoised because several studies (``regfile``, ``vmin_power``) sweep
    knobs that do not change the core runs themselves.
    """
    from repro.core.memory_like import ISVRegisterFileProtector
    from repro.uarch import TraceDrivenCore
    from repro.uarch.uop import INT_WIDTH

    key = (suite, length, seed, sample_period)
    if key not in _RF_BIAS_CACHE:
        trace = cached_trace(suite, length, seed)
        base = TraceDrivenCore().run(trace)
        protector = ISVRegisterFileProtector("int_rf", INT_WIDTH,
                                             sample_period)
        prot = TraceDrivenCore(hooks=protector).run(trace)
        _RF_BIAS_CACHE[key] = (
            base.int_rf.worst_bias,
            prot.int_rf.worst_bias,
            base.int_rf.free_fraction,
        )
        _evict(_RF_BIAS_CACHE)
    return _RF_BIAS_CACHE[key]


def _suite_index(suite: str) -> int:
    names = suite_names()
    return names.index(suite) if suite in names else 0


# ----------------------------------------------------------------------
# Study registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudyDefinition:
    """A named, parameterised experiment.

    ``spec_paths`` binds each flat study parameter to the dotted spec
    field path that feeds it (``"ratio" -> "protection.dl0.params.
    ratio"``), so the study can be driven from a declarative
    :class:`~repro.config.specs.StudySpec` via
    :func:`repro.api.run_study`.  Parameters absent from the binding
    (e.g. ``data_bias``) have no spec home and are set through
    ``StudySpec.overrides``.
    """

    name: str
    description: str
    defaults: Mapping[str, Any]
    run: Callable[[Mapping[str, Any]], Dict[str, Any]]
    spec_paths: Mapping[str, str] = None

    def __post_init__(self) -> None:
        if self.spec_paths is None:
            object.__setattr__(self, "spec_paths", {})

    def bind(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        bound = dict(self.defaults)
        bound.update(params)
        return bound

    def execute(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        return self.run(self.bind(params))


_STUDIES: Dict[str, StudyDefinition] = {}

#: Spec field paths shared by every workload-driven study.
_WORKLOAD_PATHS = {
    "suite": "workload.suites",
    "length": "workload.length",
    "seed": "workload.seed",
}

#: ... plus the DL0 geometry axes of the cache studies.
_CACHE_GEOMETRY_PATHS = {
    **_WORKLOAD_PATHS,
    "size_kb": "processor.dl0.size_kb",
    "ways": "processor.dl0.ways",
}


def register_study(
    name: str,
    description: str,
    defaults: Mapping[str, Any],
    spec_paths: Mapping[str, str] = (),
) -> Callable:
    def wrap(func: Callable) -> Callable:
        _STUDIES[name] = StudyDefinition(
            name=name, description=description,
            defaults=dict(defaults), run=func,
            spec_paths=dict(spec_paths),
        )
        return func
    return wrap


def get_study(name: str) -> StudyDefinition:
    try:
        return _STUDIES[name]
    except KeyError:
        raise KeyError(
            f"unknown study {name!r}; available: "
            f"{', '.join(study_names())}"
        ) from None


def study_names() -> List[str]:
    return sorted(_STUDIES)


# ----------------------------------------------------------------------
# Cache-like studies
# ----------------------------------------------------------------------
def _cache_config(params: Mapping[str, Any]):
    from repro.uarch.cache import CacheConfig

    size_kb = int(params["size_kb"])
    ways = int(params["ways"])
    return CacheConfig(
        name=f"DL0-{size_kb}K-{ways}w",
        size_bytes=size_kb * 1024,
        ways=ways,
    )


def _scheme_factory(params: Mapping[str, Any], created: List[Any]):
    """Zero-arg factory for the requested scheme; records instances.

    Scheme names resolve through the component registry
    (:data:`repro.config.registry.CACHE_SCHEMES`), so any newly
    registered scheme is sweepable by name with no change here.
    """
    from repro.config.registry import CACHE_SCHEMES
    from repro.config.specs import SpecError

    scheme = params["scheme"]
    scheme_params: Dict[str, Any] = {"ratio": float(params["ratio"])}
    if scheme == "line_dynamic":
        scheme_params.update(
            threshold=float(params["dyn_threshold"]),
            warmup=int(params["dyn_warmup"]),
            test_window=int(params["dyn_test_window"]),
            period=int(params["dyn_period"]),
        )
    if scheme == "none":
        raise ValueError(
            "scheme 'none' builds no mechanism; use a baseline run "
            "instead of sweeping it"
        )
    try:
        CACHE_SCHEMES.validate(scheme, scheme_params)
    except SpecError as exc:
        # The sweep layer reports ValueError messages as `error: ...`.
        raise ValueError(str(exc)) from None

    def factory():
        instance = CACHE_SCHEMES.build(scheme, scheme_params)
        created.append(instance)
        return instance

    return factory


@register_study(
    "caches",
    "invalidate-and-invert scheme on one DL0 config and suite (Table 3)",
    defaults={
        "suite": "specint2000",
        "length": 6000,
        "seed": 0,
        "size_kb": 16,
        "ways": 8,
        "scheme": "line_fixed",
        "ratio": 0.5,
        "dyn_threshold": 0.02,
        "dyn_warmup": 1000,
        "dyn_test_window": 1000,
        "dyn_period": 6000,
    },
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "scheme": "protection.dl0.name",
        "ratio": "protection.dl0.params.ratio",
        "dyn_threshold": "protection.dl0.params.threshold",
        "dyn_warmup": "protection.dl0.params.warmup",
        "dyn_test_window": "protection.dl0.params.test_window",
        "dyn_period": "protection.dl0.params.period",
    },
)
def run_caches_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.cache_like import run_cache_study

    created: List[Any] = []
    stream = cached_address_stream(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    study = run_cache_study(
        _cache_config(params),
        _scheme_factory(params, created),
        [stream],
        seed=int(params["seed"]) + _suite_index(params["suite"]),
    )
    metrics: Dict[str, Any] = {
        "scheme_name": study.scheme_name,
        "mean_loss": study.mean_loss,
        "inverted_ratio": study.mean_inverted_ratio,
        "baseline_miss_rate": study.baseline_miss_rate,
        "scheme_miss_rate": study.scheme_miss_rate,
    }
    if created and hasattr(created[-1], "activation_history"):
        metrics["activations"] = "".join(
            "A" if d else "-" for d in created[-1].activation_history
        )
    return metrics


@register_study(
    "invert_ratio",
    "LineFixed invert-ratio sweep: capacity loss vs achieved balance",
    defaults={
        "suite": "specint2000",
        "length": 10_000,
        "seed": 55,
        "size_kb": 16,
        "ways": 8,
        "ratio": 0.5,
        "data_bias": 0.9,
    },
    # data_bias is an analysis-only knob with no spec home: set it via
    # StudySpec.overrides (or sweep it by bare name).
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "ratio": "protection.dl0.params.ratio",
    },
)
def run_invert_ratio_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    metrics = run_caches_point({**params, "scheme": "line_fixed"})
    achieved = metrics["inverted_ratio"]
    bias = float(params["data_bias"])
    # Steady-state worst-cell bias when a fraction `achieved` of cells
    # holds inverted (complementary) contents of `bias`-biased data.
    metrics["expected_bias"] = (
        bias * (1.0 - achieved) + (1.0 - bias) * achieved
    )
    return metrics


@register_study(
    "victim_policy",
    "LRU-position vs any-position inversion victims (Section 3.2.1)",
    defaults={
        "suite": "specint2000",
        "length": 10_000,
        "seed": 99,
        "size_kb": 16,
        "ways": 8,
        "ratio": 0.5,
    },
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "ratio": "protection.dl0.params.ratio",
    },
)
def run_victim_policy_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.cache_like import LineFixedScheme, run_cache_study
    from repro.uarch.cache import Cache

    config = _cache_config(params)
    stream = cached_address_stream(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    seed = int(params["seed"]) + _suite_index(params["suite"])
    ratio = float(params["ratio"])
    lru = run_cache_study(config, lambda: LineFixedScheme(ratio),
                          [stream], seed=seed)
    naive = run_cache_study(config,
                            lambda: AnyPositionLineFixedScheme(ratio),
                            [stream], seed=seed)
    baseline = Cache(config)
    baseline.replay(stream)
    return {
        "lru_loss": lru.mean_loss,
        "naive_loss": naive.mean_loss,
        "mru_hit_fraction": baseline.stats.mru_hit_fraction(0),
        "mru1_hit_fraction": baseline.stats.mru_hit_fraction(1),
    }


class AnyPositionLineFixedScheme(_LineFixedScheme):
    """Naive ablation variant: inverts a random valid way, any position."""

    def __init__(self, ratio: float = 0.5):
        super().__init__(ratio)
        self.name = f"AnyPosition{int(round(ratio * 100))}%"

    def maintain(self):
        # inverted_count() is the cache's O(1) incremental counter.
        if self.cache.inverted_count() < self.threshold:
            set_index = self.rng.randrange(self.cache.config.sets)
            valid = self.cache.valid_ways(set_index)
            if valid:
                self.cache.invert_line(set_index, self.rng.choice(valid))


# ----------------------------------------------------------------------
# Memory-like studies
# ----------------------------------------------------------------------
@register_study(
    "regfile",
    "register-file ISV study: worst bit-cell bias with/without ISV",
    defaults={
        "suite": "specint2000",
        "length": 5000,
        "seed": 0,
        "sample_period": 512.0,
    },
    spec_paths={
        **_WORKLOAD_PATHS,
        "sample_period": "protection.sample_period",
    },
)
def run_regfile_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    base_bias, isv_bias, free_fraction = cached_rf_biases(
        params["suite"], int(params["length"]), int(params["seed"]),
        float(params["sample_period"]),
    )
    return {
        "base_worst_bias": base_bias,
        "isv_worst_bias": isv_bias,
        "free_fraction": free_fraction,
    }


@register_study(
    "vmin_power",
    "Vmin/power benefit of ISV balancing at one voltage target",
    defaults={
        "suite": "specint2000",
        "length": 8000,
        "seed": 88,
        "sample_period": 512.0,
        "target": 0.70,
    },
    # target (the scaled-voltage operating point) is analysis-only: set
    # it via StudySpec.overrides.
    spec_paths={
        **_WORKLOAD_PATHS,
        "sample_period": "protection.sample_period",
    },
)
def run_vmin_power_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.nbti.power import ArrayPowerModel

    base_bias, isv_bias, __ = cached_rf_biases(
        params["suite"], int(params["length"]), int(params["seed"]),
        float(params["sample_period"]),
    )
    model = ArrayPowerModel()
    target = float(params["target"])
    return {
        "base_bias": base_bias,
        "isv_bias": isv_bias,
        "base_vmin": model.vmin(base_bias),
        "isv_vmin": model.vmin(isv_bias),
        "base_power": model.power_at_scaled_voltage(base_bias, target),
        "isv_power": model.power_at_scaled_voltage(isv_bias, target),
        "savings": model.savings_from_balancing(base_bias, isv_bias,
                                                target),
    }


# ----------------------------------------------------------------------
# Multiprogram interference study
# ----------------------------------------------------------------------
@register_study(
    "multiprog",
    "multiprogram interference: interleaved suite streams through one "
    "protected DL0",
    defaults={
        "suites": ("specint2000", "office"),
        "length": 4000,
        "seed": 0,
        "policy": "round_robin",
        "slice_length": 64,
        "size_kb": 16,
        "ways": 8,
        "scheme": "line_fixed",
        "ratio": 0.5,
        "dyn_threshold": 0.02,
        "dyn_warmup": 1000,
        "dyn_test_window": 1000,
        "dyn_period": 6000,
    },
    spec_paths={
        "suites": "workload.suites",
        "length": "workload.length",
        "seed": "workload.seed",
        "policy": "workload.interleave",
        "slice_length": "workload.slice_length",
        "size_kb": "processor.dl0.size_kb",
        "ways": "processor.dl0.ways",
        "scheme": "protection.dl0.name",
        "ratio": "protection.dl0.params.ratio",
        "dyn_threshold": "protection.dl0.params.threshold",
        "dyn_warmup": "protection.dl0.params.warmup",
        "dyn_test_window": "protection.dl0.params.test_window",
        "dyn_period": "protection.dl0.params.period",
    },
)
def run_multiprog_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    """N programs time-sharing one protected cache, fully streamed.

    Unlike the single-program studies, nothing is materialised: the
    per-suite lazy address streams interleave straight into
    ``Cache.replay``, so the point runs in bounded memory at any length.
    Each replay pass rebuilds the stream from its seeds (generators are
    single-use), which is cheaper than holding N*length references.
    """
    from repro.core.cache_like import (
        DL0_ACCESSES_PER_UOP,
        DL0_EFFECTIVE_PENALTY,
        ProtectedCache,
        performance_loss,
    )
    from repro.uarch.cache import Cache
    from repro.workloads.multiprog import multiprog_address_stream

    raw_suites = params["suites"]
    suites = ((raw_suites,) if isinstance(raw_suites, str)
              else tuple(raw_suites))
    policy = str(params["policy"])
    if policy == "none":
        # WorkloadSpec's default: a spec that never set `interleave`
        # still gets a usable scenario (same fallback as
        # api.build_multiprog_stream).
        policy = "round_robin"
    stream_kwargs = dict(
        length=int(params["length"]),
        seed=int(params["seed"]),
        policy=policy,
        slice_length=int(params["slice_length"]),
    )
    config = _cache_config(params)

    baseline = Cache(config)
    baseline.replay(multiprog_address_stream(suites, **stream_kwargs))
    base_rate = baseline.stats.miss_rate

    created: List[Any] = []
    factory = _scheme_factory(params, created)
    protected = ProtectedCache(Cache(config), factory(),
                               seed=int(params["seed"]))
    protected.replay(multiprog_address_stream(suites, **stream_kwargs))
    scheme_rate = protected.stats.miss_rate

    metrics: Dict[str, Any] = {
        "scheme_name": created[-1].name,
        "n_programs": len(suites),
        "baseline_miss_rate": base_rate,
        "scheme_miss_rate": scheme_rate,
        "mean_loss": performance_loss(base_rate, scheme_rate,
                                      DL0_ACCESSES_PER_UOP,
                                      DL0_EFFECTIVE_PENALTY),
        "inverted_ratio": protected.cache.inverted_count() / config.lines,
    }
    if hasattr(created[-1], "activation_history"):
        metrics["activations"] = "".join(
            "A" if d else "-" for d in created[-1].activation_history
        )
    return metrics


# ----------------------------------------------------------------------
# Whole-processor study
# ----------------------------------------------------------------------
@register_study(
    "penelope",
    "whole-processor Penelope run: NBTIefficiency vs full guardband",
    defaults={
        "suite": "specint2000",
        "length": 5000,
        "seed": 0,
        "invert_ratio": 0.5,
        "sample_period": 512.0,
    },
    spec_paths={
        **_WORKLOAD_PATHS,
        "invert_ratio": "protection.dl0.params.ratio",
        "sample_period": "protection.sample_period",
    },
)
def run_penelope_point(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core import PenelopeProcessor

    trace = cached_trace(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    processor = PenelopeProcessor(
        invert_ratio=float(params["invert_ratio"]),
        sample_period=float(params["sample_period"]),
        seed=int(params["seed"]),
    )
    report = processor.evaluate([trace])
    return {
        "efficiency": report.efficiency,
        "baseline_efficiency": report.baseline_efficiency,
        "combined_cpi": report.combined_cpi,
        "adder_guardband": report.adder_guardband,
        "int_rf_base_bias": report.int_rf_bias[0],
        "int_rf_isv_bias": report.int_rf_bias[1],
    }
