"""Unit tests for interval-based bit-cell residency accounting."""

import pytest

np = pytest.importorskip("numpy")

from repro.uarch.bitbias import BitBiasAccumulator, pack_bits, unpack_bits


class TestUnpackPack:
    @pytest.mark.parametrize("value,width", [
        (0, 8), (1, 8), (255, 8), (0b1010, 4), (1 << 79, 80), (12345, 16),
    ])
    def test_roundtrip(self, value, width):
        assert pack_bits(unpack_bits(value, width)) == value

    def test_little_endian_order(self):
        bits = unpack_bits(0b110, 3)
        assert list(bits) == [0, 1, 1]

    def test_width_overflow_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(256, 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(-1, 8)

    def test_cached_small_width_consistent(self):
        # width <= 16 goes through the lru_cache path.
        a = unpack_bits(5, 8)
        b = unpack_bits(5, 8)
        assert np.array_equal(a, b)


class TestBitBiasAccumulator:
    def test_single_entry_residency(self):
        acc = BitBiasAccumulator(entries=1, width=4)
        acc.set_value(0, 0b1111, now=2.0)   # zeros held for 2 units
        acc.finalize(6.0)                   # ones held for 4 units
        bias = acc.bias_to_zero()
        assert np.allclose(bias, [2 / 6] * 4)

    def test_initial_value(self):
        acc = BitBiasAccumulator(entries=2, width=2, initial_value=0b11)
        acc.finalize(1.0)
        assert np.allclose(acc.bias_to_zero(), [0.0, 0.0])

    def test_per_entry_independence(self):
        acc = BitBiasAccumulator(entries=2, width=1)
        acc.set_value(0, 1, now=0.0)
        acc.finalize(10.0)
        cell = acc.cell_bias_to_zero()
        assert cell[0, 0] == pytest.approx(0.0)
        assert cell[1, 0] == pytest.approx(1.0)

    def test_aggregated_bias_weights_by_time(self):
        acc = BitBiasAccumulator(entries=2, width=1)
        acc.set_value(0, 1, now=0.0)  # entry 0 holds 1 forever
        acc.finalize(4.0)             # entry 1 holds 0 forever
        assert acc.bias_to_zero()[0] == pytest.approx(0.5)

    def test_worst_bias_and_bit(self):
        acc = BitBiasAccumulator(entries=1, width=3)
        acc.set_value(0, 0b010, now=0.0)
        acc.finalize(10.0)
        assert acc.worst_bias() == pytest.approx(1.0)
        bit, bias = acc.worst_bit()
        assert bit in (0, 2)
        assert bias == pytest.approx(1.0)

    def test_time_backwards_rejected(self):
        acc = BitBiasAccumulator(entries=1, width=1)
        acc.set_value(0, 1, now=5.0)
        with pytest.raises(ValueError):
            acc.set_value(0, 0, now=3.0)

    def test_out_of_order_across_entries_allowed(self):
        acc = BitBiasAccumulator(entries=2, width=1)
        acc.set_value(0, 1, now=5.0)
        acc.set_value(1, 1, now=3.0)  # earlier time, different entry: fine
        acc.finalize(10.0)

    def test_current_value(self):
        acc = BitBiasAccumulator(entries=1, width=8)
        acc.set_value(0, 171, now=1.0)
        assert acc.current_value(0) == 171

    def test_unobserved_reports_half(self):
        acc = BitBiasAccumulator(entries=1, width=2)
        assert np.allclose(acc.bias_to_zero(), [0.5, 0.5])

    def test_total_observed_time(self):
        acc = BitBiasAccumulator(entries=2, width=4)
        acc.finalize(3.0)
        assert acc.total_observed_time() == pytest.approx(2 * 4 * 3.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            BitBiasAccumulator(entries=0, width=4)
        with pytest.raises(ValueError):
            BitBiasAccumulator(entries=4, width=0)
