"""Multiprogram workload interleaving.

The paper evaluates single-program traces; shared protected structures
(one DL0, one DTLB) also see *interference* when several programs
time-share a core.  This module merges N independent suite streams into
one reference stream the way a coarse-grained multithreading scheduler
would, without materialising any of the inputs:

- ``round_robin`` — each live program runs for ``slice_length``
  references, in program order, until every stream is exhausted;
- ``random_slice`` — the next program is drawn uniformly (seeded, so
  runs are reproducible) and runs for one slice.

Streams are plain iterables, so the interleavers compose with the lazy
generators (:func:`~repro.workloads.generator.iter_address_stream`,
:meth:`~repro.workloads.generator.TraceGenerator.stream`) into fully
bounded-memory multiprogram scenarios.  Duplicate suite names are
distinct programs: each position gets its own ``trace_index``, so two
copies of ``specint2000`` do not share an address sequence.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Any, Iterable, Iterator, List, Sequence

from repro.workloads.generator import (
    DEFAULT_TRACE_LENGTH,
    TraceGenerator,
    iter_address_stream,
)
from repro.uarch.uop import Uop

#: Interleaving policies accepted by :func:`interleave`.
INTERLEAVE_POLICIES = ("round_robin", "random_slice")


def interleave(
    streams: Sequence[Iterable[Any]],
    policy: str = "round_robin",
    slice_length: int = 64,
    seed: int = 0,
) -> Iterator[Any]:
    """Merge independent streams into one, one slice at a time.

    Every input element appears exactly once; only the order differs
    between policies.  Exhausted streams drop out and the survivors keep
    sharing the output until all are drained.

    Examples
    --------
    >>> list(interleave([iter("AAAA"), iter("BB")], slice_length=2))
    ['A', 'A', 'B', 'B', 'A', 'A']
    """
    if policy not in INTERLEAVE_POLICIES:
        raise ValueError(
            f"unknown interleave policy {policy!r}; choose from "
            f"{', '.join(INTERLEAVE_POLICIES)}"
        )
    if slice_length <= 0:
        raise ValueError("slice_length must be positive")
    iterators = [iter(stream) for stream in streams]
    if not iterators:
        raise ValueError("need at least one stream to interleave")
    if policy == "round_robin":
        return _round_robin(iterators, slice_length)
    return _random_slice(iterators, slice_length, seed)


def _round_robin(iterators: List[Iterator[Any]],
                 slice_length: int) -> Iterator[Any]:
    live = list(iterators)
    while live:
        survivors = []
        for iterator in live:
            chunk = list(islice(iterator, slice_length))
            yield from chunk
            if len(chunk) == slice_length:
                survivors.append(iterator)
        live = survivors


def _random_slice(iterators: List[Iterator[Any]], slice_length: int,
                  seed: int) -> Iterator[Any]:
    rng = random.Random(f"multiprog/{seed}")
    live = list(iterators)
    while live:
        index = rng.randrange(len(live))
        chunk = list(islice(live[index], slice_length))
        yield from chunk
        if len(chunk) < slice_length:
            live.pop(index)


def multiprog_address_stream(
    suites: Sequence[str],
    length: int = 50_000,
    seed: int = 0,
    policy: str = "round_robin",
    slice_length: int = 64,
) -> Iterator[int]:
    """One interference address stream over N programs.

    Each suite contributes a ``length``-reference lazy stream
    (:func:`~repro.workloads.generator.iter_address_stream`); the merged
    stream carries ``length * len(suites)`` references total.
    """
    suites = list(suites)
    if not suites:
        raise ValueError("need at least one suite")
    streams = [
        iter_address_stream(suite, length=length, seed=seed,
                            trace_index=index)
        for index, suite in enumerate(suites)
    ]
    return interleave(streams, policy=policy, slice_length=slice_length,
                      seed=seed)


def multiprog_uop_stream(
    suites: Sequence[str],
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    policy: str = "round_robin",
    slice_length: int = 64,
) -> Iterator[Uop]:
    """One interference uop stream over N programs.

    The lazy counterpart for full core runs:
    :meth:`~repro.uarch.core.TraceDrivenCore.run` accepts the returned
    iterator directly.  Uop ``seq`` numbers restart per program (they
    identify the uop within its own trace, not the interleaved order).
    """
    suites = list(suites)
    if not suites:
        raise ValueError("need at least one suite")
    generator = TraceGenerator(seed=seed)
    streams = [
        generator.stream(suite, length=length, trace_index=index)
        for index, suite in enumerate(suites)
    ]
    return interleave(streams, policy=policy, slice_length=slice_length,
                      seed=seed)
