"""Bias aggregation helpers.

These accept any 1-D float sequence — numpy arrays from the residency
accumulators or plain lists (what the accumulators return when numpy is
not installed).  With numpy present the merge preserves the array type;
without it the same arithmetic runs over lists.
"""

from __future__ import annotations

from typing import Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    np = None  # type: ignore[assignment]


def merge_bias_arrays(
    arrays: Sequence["np.ndarray"],
    weights: Sequence[float] | None = None,
) -> "np.ndarray":
    """Weighted average of per-bit bias vectors across traces.

    Weights default to uniform; for residency statistics, pass the
    simulated cycle counts so longer traces count proportionally.
    """
    if not arrays:
        raise ValueError("need at least one bias array")
    widths = {len(a) for a in arrays}
    if len(widths) != 1:
        raise ValueError(f"bias arrays have mismatched shapes: {widths}")
    if weights is None:
        weights = [1.0] * len(arrays)
    if len(weights) != len(arrays):
        raise ValueError("weights and arrays must have the same length")
    total_weight = float(sum(weights))
    if total_weight <= 0.0:
        raise ValueError("weights must sum to a positive value")
    if np is not None:
        merged = np.zeros_like(np.asarray(arrays[0]), dtype=np.float64)
        for array, weight in zip(arrays, weights):
            merged += np.asarray(array, dtype=np.float64) * (
                weight / total_weight
            )
        return merged
    merged_list = [0.0] * len(arrays[0])
    for array, weight in zip(arrays, weights):
        fraction = weight / total_weight
        for index, value in enumerate(array):
            merged_list[index] += float(value) * fraction
    return merged_list


def worst_imbalance(bias: "np.ndarray") -> Tuple[int, float]:
    """(bit index, bias) of the most imbalanced position."""
    best_index, best = 0, -1.0
    for index, value in enumerate(bias):
        imbalance = max(value, 1.0 - value)
        if imbalance > best:
            best_index, best = index, imbalance
    return best_index, float(bias[best_index])


def bias_band(bias: "np.ndarray") -> Tuple[float, float]:
    """(min, max) bias across positions — Section 1.1's "65% to 90%"."""
    return float(min(bias)), float(max(bias))
