"""Tests for the Vmin-driven power model."""

import pytest

from repro.nbti.power import ArrayPowerModel


class TestVmin:
    def test_balanced_array_keeps_nominal_headroom(self):
        model = ArrayPowerModel()
        assert model.vmin(0.5) == pytest.approx(0.70 + 0.01, abs=1e-6)

    def test_biased_array_raises_vmin(self):
        model = ArrayPowerModel()
        assert model.vmin(0.9) > model.vmin(0.5)
        # Fully biased: the full 10% V_TH shift lands on Vmin.
        assert model.vmin(1.0) == pytest.approx(0.70 + 0.10)

    def test_vmin_symmetric_in_bias(self):
        model = ArrayPowerModel()
        assert model.vmin(0.1) == pytest.approx(model.vmin(0.9))


class TestOperatingVoltage:
    def test_floored_at_vmin(self):
        model = ArrayPowerModel()
        assert model.operating_voltage(0.9, target_vdd=0.6) == \
            pytest.approx(model.vmin(0.9))

    def test_unconstrained_above_vmin(self):
        model = ArrayPowerModel()
        assert model.operating_voltage(0.9, target_vdd=0.95) == 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayPowerModel().operating_voltage(0.9, target_vdd=0.0)


class TestPower:
    def test_quadratic_scaling(self):
        model = ArrayPowerModel()
        assert model.relative_power(1.0) == pytest.approx(1.0)
        assert model.relative_power(0.5) == pytest.approx(0.25)

    def test_savings_from_balancing(self):
        model = ArrayPowerModel()
        # Paper scenario: bias 90% baseline vs ~50% after Penelope,
        # scaling toward a deep-sleep-ish 0.6V target.
        savings = model.savings_from_balancing(
            baseline_bias=0.9, protected_bias=0.52, target_vdd=0.6
        )
        assert savings > 0.0
        # More balancing never hurts.
        more = model.savings_from_balancing(0.9, 0.5, 0.6)
        assert more >= savings

    def test_no_savings_when_target_above_floors(self):
        model = ArrayPowerModel()
        assert model.savings_from_balancing(0.9, 0.5, 0.95) == \
            pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayPowerModel(nominal_vmin=1.5)
        with pytest.raises(ValueError):
            ArrayPowerModel(leakage_share=2.0)
        with pytest.raises(ValueError):
            ArrayPowerModel().relative_power(0.0)
