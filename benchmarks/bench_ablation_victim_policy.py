"""Ablation: inversion-victim selection policy.

The paper selects inversion victims from the LRU positions of random
sets, arguing most hits concentrate at the MRU.  This ablation compares
that against a naive any-position random-victim variant and reports the
measured hit-position distribution backing the argument (the paper: 90%
of DL0 hits in the MRU way, 7% in MRU+1).
"""

import random

import pytest

from repro.analysis import format_table
from repro.core.cache_like import LineFixedScheme, run_cache_study
from repro.uarch.cache import Cache, CacheConfig, LineState
from repro.workloads import generate_address_stream, suite_names

from conftest import SMOKE, scaled

CONFIG = CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024, ways=8)


class AnyPositionLineFixed(LineFixedScheme):
    """Naive variant: inverts a random *valid* way, any stack position."""

    def __init__(self, ratio=0.5):
        super().__init__(ratio)
        self.name = f"AnyPosition{int(round(ratio * 100))}%"

    def maintain(self):
        if self.cache.inverted_count() < self.threshold:
            set_index = self.rng.randrange(self.cache.config.sets)
            valid = self.cache.valid_ways(set_index)
            if valid:
                self.cache.invert_line(set_index, self.rng.choice(valid))


@pytest.fixture(scope="module")
def streams():
    return [
        generate_address_stream(suite, length=scaled(10_000), seed=99)
        for suite in suite_names()
    ]


def compare(streams):
    lru = run_cache_study(CONFIG, lambda: LineFixedScheme(0.5), streams)
    naive = run_cache_study(CONFIG, lambda: AnyPositionLineFixed(0.5),
                            streams)
    # Hit-position histogram of a baseline run (the paper's MRU stat).
    cache = Cache(CONFIG)
    for stream in streams:
        cache.replay(stream)
    mru = cache.stats.mru_hit_fraction(0)
    mru1 = cache.stats.mru_hit_fraction(1)
    return lru, naive, mru, mru1


def test_ablation_victim_policy(benchmark, streams):
    lru, naive, mru, mru1 = benchmark.pedantic(
        compare, args=(streams,), rounds=1, iterations=1
    )
    if not SMOKE:
        # LRU-position selection must not be worse than naive victims.
        assert lru.mean_loss <= naive.mean_loss + 1e-6
        # Hits concentrate near the MRU (paper: 90% / 7%).
        assert mru > 0.6
    rows = [
        ["LRU-position victims (paper)", f"{lru.mean_loss:.2%}"],
        ["any-position victims (naive)", f"{naive.mean_loss:.2%}"],
        ["hits at MRU position", f"{mru:.1%} (paper 90%)"],
        ["hits at MRU+1 position", f"{mru1:.1%} (paper 7%)"],
    ]
    text = format_table(
        ["policy / statistic", "value"],
        rows,
        title="Ablation — inversion victim selection (DL0-16K-8w)",
    )
    from conftest import write_result

    write_result("ablation_victim_policy.txt", text)
