"""Compatibility re-export of the scalar cache model.

The implementation moved to :mod:`repro.uarch.backends.reference` when
the kernel-backend layer was extracted; every existing import site
(``from repro.uarch.cache import Cache``) keeps working through this
module.  New code selecting an engine should go through
:func:`repro.uarch.backends.get_backend` instead of constructing
:class:`Cache` directly.
"""

from __future__ import annotations

from repro.uarch.backends.reference import (
    Cache,
    CacheConfig,
    CacheStats,
    LineState,
)

__all__ = ["Cache", "CacheConfig", "CacheStats", "LineState"]
