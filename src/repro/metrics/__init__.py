"""Unified metrics & telemetry: one typed stat tree for every result.

- :mod:`repro.metrics.stats` — the stat vocabulary (:class:`Counter`,
  :class:`Gauge`, :class:`Ratio`, :class:`Distribution`, :class:`Text`,
  :class:`Derived`), the hierarchical :class:`MetricSet` with dotted
  paths / ``flatten()`` / ``snapshot()``, and the :class:`MetricSource`
  protocol every stat-bearing component implements.
- :mod:`repro.metrics.telemetry` — :class:`IntervalTelemetry`,
  bounded-memory interval snapshots over streaming runs, with a
  JSON-artefact round trip for ``repro report --intervals``.

Quick start::

    from repro.metrics import IntervalTelemetry
    from repro.uarch import TraceDrivenCore
    from repro.workloads import TraceGenerator

    core = TraceDrivenCore()
    telemetry = IntervalTelemetry(core, every=2000)
    stream = TraceGenerator(seed=0).stream("specint2000", length=10_000)
    result = core.run(telemetry.watch(stream))
    telemetry.totals()["dl0.misses"]      # == result.dl0.misses
    telemetry.series("dl0.misses")        # per-interval miss deltas
"""

from repro.metrics.stats import (
    CUMULATIVE_KINDS,
    Counter,
    Derived,
    Distribution,
    Gauge,
    MetricSet,
    MetricSnapshot,
    MetricSource,
    NUMERIC_KINDS,
    Ratio,
    Stat,
    Text,
    delta_values,
    kind_of_value,
)
from repro.metrics.telemetry import (
    IntervalTelemetry,
    load_interval_payload,
    payload_deltas,
)

__all__ = [
    "CUMULATIVE_KINDS",
    "Counter",
    "Derived",
    "Distribution",
    "Gauge",
    "IntervalTelemetry",
    "MetricSet",
    "MetricSnapshot",
    "MetricSource",
    "NUMERIC_KINDS",
    "Ratio",
    "Stat",
    "Text",
    "delta_values",
    "kind_of_value",
    "load_interval_payload",
    "payload_deltas",
]
