"""Section 1.1: motivation statistics.

Carry-in zero-signal probability (>90% in the paper), the INT register
file per-bit bias band (65-90%) and the near-100% scheduler fields, all
measured on the scaled Table 1 workload.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import bias_band, format_table, merge_bias_arrays

from conftest import SMOKE, write_result


def collect(baseline_results):
    results = list(baseline_results.values())
    cins = [v[2] for r in results for v in r.adder_samples]
    carry_zero = 1.0 - sum(cins) / len(cins)
    int_bias = merge_bias_arrays(
        [r.int_rf.bias_to_zero for r in results],
        weights=[r.cycles for r in results],
    )
    sched_worst = max(r.scheduler.worst_bias() for r in results)
    return carry_zero, int_bias, sched_worst


def test_motivation_bias(benchmark, baseline_results):
    carry_zero, int_bias, sched_worst = benchmark.pedantic(
        collect, args=(baseline_results,), rounds=1, iterations=1
    )
    low, high = bias_band(int_bias)
    if not SMOKE:
        assert carry_zero > 0.90
        assert sched_worst > 0.95

    rows = [
        ["adder carry-in zero-signal probability",
         f"{carry_zero:.1%}", "> 90%"],
        ["INT register file bias band (min)", f"{low:.1%}", "~65%"],
        ["INT register file bias band (max)", f"{high:.1%}", "~90%"],
        ["scheduler worst-field bias", f"{sched_worst:.1%}", "~100%"],
    ]
    write_result(
        "motivation_bias.txt",
        format_table(
            ["statistic", "measured", "paper"],
            rows,
            title="Section 1.1 — motivation bias statistics",
        ),
    )
